//! The per-rank body of the Two-Face algorithm (Algorithms 1–3).
//!
//! Each simulated rank plays all the roles of Algorithm 1 on its two virtual
//! lanes:
//!
//! * **Sync lane, transfer phase** (Algorithm 1 lines 5–8): walk the dense
//!   stripes in the canonical global order and participate in each multicast
//!   whose replicated metadata lists this rank — as root when it owns the
//!   stripe, as destination when any of its stripes was classified sync.
//! * **Async lane** (lines 9–14, Algorithm 3): for each asynchronous stripe,
//!   scan `UniqueColIDs`, coalesce into runs, issue one indexed `Rget`, and
//!   compute column-major straight into `C`.
//! * **Sync lane, compute phase** (lines 15–19, Algorithm 2): once the
//!   multicasts are in, process row panels with a thread-local accumulation
//!   buffer.
//!
//! The rank finishes at the later of its two lanes, exactly as the real
//! node's two thread groups do. One simplification: the paper's async
//! threads join the synchronous row-panel pool after draining their queue
//! (line 15); with the Table-2 split that adds at most 8 of 128 threads, an
//! effect the paper's own model also neglects, so the simulator charges sync
//! compute at the sync pool's throughput regardless.

use crate::algo::SpmmAlgorithm;
use crate::coalesce::coalesce_rows;
use crate::config::TwoFaceConfig;
use crate::format::RankMatrices;
use crate::kernels::{
    async_stripe_kernel, par_async_stripe, par_sync_panels, sync_panel_kernel, BlockRows,
    FetchedRows,
};
use crate::pool::{Pool, WallTimer};
use crate::runner::{ExecOpts, Problem};
use std::sync::Arc;
use twoface_matrix::{Entry, SmallTriplet, SCALAR_BYTES};
use twoface_net::{Lane, NetError, Payload, PhaseClass, RankCtx};
use twoface_partition::PartitionPlan;

/// Shared preprocessed inputs for Two-Face and Async Fine, indexed by rank.
pub(crate) struct TwoFaceData {
    /// The (replicated) plan: classifications plus multicast metadata.
    pub plan: Arc<PartitionPlan>,
    /// Each rank's Figure-6 structures (shared with the
    /// [`PreparedMatrix`](crate::PreparedMatrix) they may have come from).
    pub rank_matrices: Arc<Vec<RankMatrices>>,
    /// Each rank's block of `B`.
    pub b_blocks: Vec<Arc<Vec<f64>>>,
}

impl TwoFaceData {
    /// Builds all ranks' structures from a problem and plan. Ranks are
    /// independent, so the builds fan out across `pool`; results are
    /// collected in rank order, so the data is identical for any worker
    /// count.
    pub fn build(
        problem: &Problem,
        plan: Arc<PartitionPlan>,
        config: &TwoFaceConfig,
        pool: &Pool,
    ) -> TwoFaceData {
        let p = problem.layout.nodes();
        let rank_matrices =
            Arc::new(pool.map(p, |rank| {
                RankMatrices::build(&problem.a, &plan, rank, config.row_panel_height)
            }));
        let b_blocks = pool.map(p, |rank| Arc::new(problem.b_block(rank)));
        TwoFaceData { plan, rank_matrices, b_blocks }
    }

    /// Stages execution data from a compatible [`PreparedMatrix`]: the plan
    /// and rank structures are shared (no rebuild), only the `B` blocks —
    /// the part that depends on the dense operand — are copied out.
    pub fn from_prepared(
        problem: &Problem,
        prepared: &crate::prepared::PreparedMatrix,
        pool: &Pool,
    ) -> TwoFaceData {
        let p = problem.layout.nodes();
        let b_blocks = pool.map(p, |rank| Arc::new(problem.b_block(rank)));
        TwoFaceData {
            plan: Arc::clone(prepared.plan()),
            rank_matrices: Arc::clone(prepared.rank_matrices()),
            b_blocks,
        }
    }
}

/// Staged Two-Face / Async Fine execution: the plan (classified or uniform)
/// decides which of the two it behaves as.
pub(crate) struct PlannedAlgo<'a> {
    pub data: TwoFaceData,
    pub problem: &'a Problem,
    pub config: &'a TwoFaceConfig,
    pub exec: ExecOpts,
}

/// The per-rank memory estimate of a planned (Two-Face / Async Fine) run
/// beyond the rank's own operands: buffered sync stripes plus a conservative
/// double of the largest async fetch (coalescing may pad fetches). Shared by
/// the resident staging gate and the streamed pipeline, so both reject the
/// same infeasible runs.
pub(crate) fn planned_memory_extra(plan: &PartitionPlan, k: usize, rank: usize) -> usize {
    use twoface_partition::StripeClass;
    let layout = plan.layout();
    let row_bytes = k * SCALAR_BYTES;
    let mut sync_bytes = 0usize;
    let mut max_fetch = 0usize;
    for &(stripe, class) in &plan.classification(rank).classes {
        match class {
            StripeClass::Sync => {
                sync_bytes += layout.stripe_cols(stripe).len() * row_bytes;
            }
            StripeClass::Async => {
                let l = plan.profile(rank).stripe(stripe).map_or(0, |s| s.rows_needed());
                max_fetch = max_fetch.max(l * row_bytes);
            }
            StripeClass::LocalInput => {}
        }
    }
    sync_bytes + 2 * max_fetch
}

impl SpmmAlgorithm for PlannedAlgo<'_> {
    fn memory_extra(&self, rank: usize) -> usize {
        planned_memory_extra(&self.data.plan, self.exec.k, rank)
    }

    fn execute(&self, ctx: &mut RankCtx) -> Result<Vec<f64>, NetError> {
        twoface_rank(ctx, &self.data, self.problem, self.config, &self.exec)
    }
}

/// Executes Two-Face on one rank. Returns the rank's flat `C` block, or the
/// first unrecoverable communication fault.
pub(crate) fn twoface_rank(
    ctx: &mut RankCtx,
    data: &TwoFaceData,
    problem: &Problem,
    config: &TwoFaceConfig,
    opts: &ExecOpts,
) -> Result<Vec<f64>, NetError> {
    twoface_rank_masked(ctx, data, problem, config, opts, None)
}

/// [`twoface_rank`] with an optional per-epoch edge mask (§5.4's sampled
/// GNN sketch): the stripe classification and multicast schedule stay fixed
/// from the one-time preprocessing, while masked-out nonzeros are skipped at
/// runtime — asynchronous stripes even shrink their fetches to the rows the
/// surviving nonzeros need.
pub(crate) fn twoface_rank_masked(
    ctx: &mut RankCtx,
    data: &TwoFaceData,
    problem: &Problem,
    config: &TwoFaceConfig,
    opts: &ExecOpts,
    mask: Option<&crate::sampling::EdgeMask>,
) -> Result<Vec<f64>, NetError> {
    let rank = ctx.rank();
    let layout = &problem.layout;
    let k = opts.k;
    // Real execution workers for this rank's local kernels; orthogonal to
    // the modeled thread counts in `config` (see `crate::pool`).
    let pool = Pool::new(opts.workers);
    let plan = &data.plan;
    let matrices = &data.rank_matrices[rank];
    let my_cols = layout.col_range(rank);
    let row_base = layout.row_range(rank).start;
    let is_active =
        |t: &SmallTriplet| mask.is_none_or(|m| m.is_active(row_base + t.row(), t.col()));

    // Window exposing this rank's B block for fine-grained gets; creation is
    // the "initial setup of data structures for MPI" that Figure 10 labels
    // Other.
    let win = ctx.create_window(Arc::clone(&data.b_blocks[rank]))?;

    // --- Sync lane: dense stripe transfers (Algorithm 1, lines 5-8). ---
    // Canonical global stripe order keeps every rank's collective sequence
    // consistent, as MPI requires.
    let mut stripe_buffers = BlockRows::new(k);
    stripe_buffers.add_block(my_cols.clone(), Arc::clone(&data.b_blocks[rank]));
    for stripe in 0..layout.num_stripes() {
        let Some(group) = plan.multicast_group(stripe) else {
            continue; // nobody needs it synchronously: never communicated
        };
        if !group.contains(&rank) {
            continue;
        }
        let owner = layout.stripe_owner(stripe);
        let payload = (owner == rank).then(|| {
            // Zero-copy: the multicast payload is a view into the resident
            // B block, not a materialised stripe copy.
            let cols = layout.stripe_cols(stripe);
            let lo = (cols.start - my_cols.start) * k;
            let hi = (cols.end - my_cols.start) * k;
            Payload::from(Arc::clone(&data.b_blocks[rank])).subslice(lo..hi)
        });
        let buf = ctx.multicast(stripe as u64, owner, &group, payload)?;
        if owner != rank {
            stripe_buffers.add_block(layout.stripe_cols(stripe), buf);
        }
    }

    // --- Async lane: Algorithm 3 per asynchronous stripe. ---
    let local_rows = layout.row_range(rank).len();
    let mut c_local = vec![0.0; local_rows * k];
    let max_distance = config.max_coalesce_distance(k);
    // Arena scratch shared across stripes: the fetch buffer cycles through
    // `FetchedRows` and back, and the owner-local column list is rebuilt in
    // place — no per-stripe allocations on the async lane's steady state.
    let mut fetch_scratch: Vec<f64> = Vec::new();
    let mut owner_local: Vec<usize> = Vec::new();
    for stripe in matrices.asynchronous.stripes() {
        let owner = layout.stripe_owner(stripe.stripe);
        debug_assert_ne!(owner, rank, "async stripes are remote-input by construction");
        let col_base = layout.col_range(owner).start;
        // Under a mask, only the surviving nonzeros' rows are fetched —
        // column-major order makes the filtered UniqueColIDs a single scan.
        owner_local.clear();
        let active: Vec<SmallTriplet> = if mask.is_some() {
            let active: Vec<_> = stripe.entries.iter().filter(|t| is_active(t)).copied().collect();
            owner_local.extend(active.iter().map(|t| t.col() - col_base));
            owner_local.dedup(); // column-major: already sorted by col
            active
        } else {
            owner_local.extend(stripe.unique_cols.iter().map(|&c| c as usize - col_base));
            Vec::new()
        };
        if owner_local.is_empty() && mask.is_some() {
            continue; // fully masked out: no transfer at all
        }
        let active_nnz = if mask.is_some() { active.len() } else { stripe.nnz() };
        // §7.1's rejected row-major variant: the required rows must be
        // identified by a runtime sort+dedup before the transfer can even be
        // issued; compute is then buffered (row-panel throughput on the
        // async pool) instead of atomic-per-nonzero.
        let row_major = config.async_layout == crate::config::AsyncLayout::RowMajor;
        if row_major {
            let identify = ctx.cost().identify_cost(active_nnz);
            ctx.advance(Lane::Async, identify, PhaseClass::AsyncComp);
        }
        let (runs, _padding) = coalesce_rows(&owner_local, max_distance);
        if ctx.events_enabled() {
            for &(_, len) in &runs {
                ctx.observe("coalesced_run_rows", len as u64);
            }
        }
        ctx.win_rget_rows_into(win, owner, &runs, k, &mut fetch_scratch)?;
        let compute_cost = if row_major {
            let per_element = ctx.cost().gamma_sync
                * (config.sync_comp_threads as f64 / config.async_comp_threads as f64);
            per_element * (active_nnz * k) as f64 + ctx.cost().kappa_async
        } else {
            ctx.cost().async_compute_cost(active_nnz, k, 1)
        };
        // The real kernel runs before its span is charged so its measured
        // wall time can ride on the event; the simulated clocks advance by
        // exactly the same amount either way.
        let timer = WallTimer::start(ctx.wall_time_enabled() && opts.compute);
        if opts.compute {
            let rows_src = FetchedRows::new(&runs, col_base, std::mem::take(&mut fetch_scratch), k);
            if row_major {
                // Execute in row-major order with the buffered kernel; the
                // numeric result is identical, only the summation order and
                // the charged cost differ. The row-major ordering is
                // precomputed at preprocessing time; a mask only needs a
                // runtime filter, never a sort.
                if mask.is_some() {
                    let active_rm: Vec<SmallTriplet> = stripe
                        .entries_row_major()
                        .iter()
                        .filter(|t| is_active(t))
                        .copied()
                        .collect();
                    sync_panel_kernel(&active_rm, &rows_src, &mut c_local, k);
                } else {
                    par_sync_panels(&pool, stripe.entries_row_major(), &rows_src, &mut c_local, k);
                }
            } else if mask.is_some() {
                async_stripe_kernel(&active, &rows_src, &mut c_local, k);
            } else {
                // The parallel driver consumes the row-major view: per
                // output row the contribution order (ascending column)
                // matches the serial column-major kernel exactly, so the
                // result is bit-identical for any worker count.
                let spans =
                    par_async_stripe(&pool, stripe.entries_row_major(), &rows_src, &mut c_local, k);
                // Span fan-out scales with the host pool, so it lives in the
                // host-profiling namespace, gated with wall time.
                if ctx.wall_time_enabled() {
                    ctx.observe("host.kernel_spans", spans as u64);
                }
            }
            // Recycle the fetch allocation for the next stripe.
            fetch_scratch = rows_src.into_data();
        }
        ctx.advance_span(
            Lane::Async,
            compute_cost,
            PhaseClass::AsyncComp,
            (active_nnz * k) as u64,
            timer.elapsed_nanos(),
        );
    }

    // --- Sync lane: row-panel compute (Algorithm 1 lines 15-19). ---
    let sync_local = &matrices.sync_local;
    if sync_local.nnz() > 0 {
        let active_nnz = if mask.is_some() {
            sync_local.entries().iter().filter(|t| is_active(t)).count()
        } else {
            sync_local.nnz()
        };
        let timer = WallTimer::start(ctx.wall_time_enabled() && opts.compute);
        if opts.compute {
            if mask.is_some() {
                for panel in 0..sync_local.num_panels() {
                    let active: Vec<SmallTriplet> =
                        sync_local.panel(panel).iter().filter(|t| is_active(t)).copied().collect();
                    sync_panel_kernel(&active, &stripe_buffers, &mut c_local, k);
                }
            } else {
                // Row panels tile the local rows, so the whole row-major
                // entry slice fans out over row-aligned chunks — the same
                // per-row accumulation order as the per-panel serial loop.
                par_sync_panels(&pool, sync_local.entries(), &stripe_buffers, &mut c_local, k);
            }
        }
        if active_nnz > 0 {
            let cost =
                ctx.cost().sync_compute_cost(active_nnz, k, sync_local.num_nonempty_panels());
            ctx.advance_span(
                Lane::Sync,
                cost,
                PhaseClass::SyncComp,
                (active_nnz * k) as u64,
                timer.elapsed_nanos(),
            );
        }
    }
    Ok(c_local)
}
