//! The Two-Face sparse matrix representation (Figure 6).
//!
//! Preprocessing splits each node's nonzeros into two structures:
//!
//! * a [`SyncLocalMatrix`] holding synchronous and local-input nonzeros in
//!   row-major order, divided into *row panels* — the unit of work for
//!   synchronous compute threads, each finished with a single accumulation
//!   into `C` (Figure 6b);
//! * an [`AsyncMatrix`] holding asynchronous nonzeros grouped by stripe
//!   (stripes in row-major i.e. ascending order), column-major *within* each
//!   stripe so the distinct required `B` rows fall out of a single linear
//!   scan (Figure 6c).
//!
//! Row indices in both structures are node-local (0-based within the node's
//! row block); column indices stay global. Entries are stored as 16-byte
//! [`SmallTriplet`]s (`u32` indices, `f64` value) — the compact layout the
//! kernels stream — which is why construction requires the matrix dimensions
//! to fit the small-index limit (checked, never truncated; every runnable
//! problem fits, since `B` alone at `2^32` rows would exceed host memory).

use twoface_matrix::{fits_small_index, CooMatrix, SmallTriplet, Triplet};
use twoface_partition::{PartitionPlan, StripeClass};

/// The synchronous/local-input sparse matrix of one node (Figure 6b).
#[derive(Debug, Clone, PartialEq)]
pub struct SyncLocalMatrix {
    local_rows: usize,
    panel_height: usize,
    entries: Vec<SmallTriplet>,
    /// `panel_ptrs[i]..panel_ptrs[i+1]` indexes the entries of panel `i`
    /// (local rows `[i*h, (i+1)*h)`).
    panel_ptrs: Vec<usize>,
}

impl SyncLocalMatrix {
    /// Number of local rows covered (the node's row block height).
    pub fn local_rows(&self) -> usize {
        self.local_rows
    }

    /// Nonzeros stored.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Number of row panels.
    pub fn num_panels(&self) -> usize {
        self.panel_ptrs.len().saturating_sub(1)
    }

    /// Number of row panels that contain at least one nonzero — the panels
    /// that are actually enqueued as work units.
    pub fn num_nonempty_panels(&self) -> usize {
        (0..self.num_panels()).filter(|&i| !self.panel(i).is_empty()).count()
    }

    /// The configured panel height in rows.
    pub fn panel_height(&self) -> usize {
        self.panel_height
    }

    /// The entries of panel `i`, row-major.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_panels()`.
    pub fn panel(&self, i: usize) -> &[SmallTriplet] {
        &self.entries[self.panel_ptrs[i]..self.panel_ptrs[i + 1]]
    }

    /// All entries, row-major.
    pub fn entries(&self) -> &[SmallTriplet] {
        &self.entries
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<SmallTriplet>()
            + self.panel_ptrs.len() * std::mem::size_of::<usize>()
    }
}

/// One asynchronous stripe of one node (a run of Figure 6c).
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncStripe {
    /// Global stripe index.
    pub stripe: usize,
    /// Nonzeros in column-major order (sorted by column, then local row).
    pub entries: Vec<SmallTriplet>,
    /// The distinct global column ids of the entries, ascending — the
    /// `UniqueColIDs` of Algorithm 3, identifying the `B` rows to fetch.
    pub unique_cols: Vec<u32>,
    /// The same nonzeros in row-major order, precomputed so the §7.1
    /// row-major ablation does not re-sort the stripe on every run.
    entries_row_major: Vec<SmallTriplet>,
}

impl AsyncStripe {
    /// Nonzeros in this stripe.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stripe's nonzeros in row-major order (sorted by local row, then
    /// column) — the traversal order of the §7.1 row-major ablation.
    pub fn entries_row_major(&self) -> &[SmallTriplet] {
        &self.entries_row_major
    }
}

/// The asynchronous sparse matrix of one node (Figure 6c).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AsyncMatrix {
    stripes: Vec<AsyncStripe>,
}

impl AsyncMatrix {
    /// The stripes, ascending by stripe index.
    pub fn stripes(&self) -> &[AsyncStripe] {
        &self.stripes
    }

    /// Approximate heap footprint in bytes (both entry orders plus the
    /// unique-column tables).
    pub fn approx_bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                2 * s.entries.len() * std::mem::size_of::<SmallTriplet>()
                    + s.unique_cols.len() * std::mem::size_of::<u32>()
                    + std::mem::size_of::<AsyncStripe>()
            })
            .sum()
    }

    /// Total nonzeros across stripes.
    pub fn nnz(&self) -> usize {
        self.stripes.iter().map(AsyncStripe::nnz).sum()
    }

    /// Number of asynchronous stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }
}

/// Both preprocessed structures of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct RankMatrices {
    /// Synchronous and local-input nonzeros (Figure 6b).
    pub sync_local: SyncLocalMatrix,
    /// Asynchronous nonzeros (Figure 6c).
    pub asynchronous: AsyncMatrix,
}

impl RankMatrices {
    /// Approximate heap footprint in bytes — the quantity the serving
    /// layer's plan cache charges against its byte budget.
    pub fn approx_bytes(&self) -> usize {
        self.sync_local.approx_bytes() + self.asynchronous.approx_bytes()
    }

    /// Builds the node's structures from the global matrix and the plan.
    ///
    /// Only nonzeros in `rank`'s row block are consulted — located by a
    /// binary search on the row-sorted triplet array, so the per-rank cost is
    /// `O(nnz_rank)`, not a full-matrix scan (building all `p` ranks is
    /// `O(nnz)` total, not `O(p * nnz)`). Row indices are rebased to the
    /// block; columns stay global.
    ///
    /// # Panics
    ///
    /// Panics if `panel_height == 0`, or if the matrix dimensions exceed the
    /// small-index (`u32`) limit of the compact entry layout.
    pub fn build(
        a: &CooMatrix,
        plan: &PartitionPlan,
        rank: usize,
        panel_height: usize,
    ) -> RankMatrices {
        let rows = plan.layout().row_range(rank);
        let all = a.triplets();
        let lo = all.partition_point(|t| t.row < rows.start);
        let hi = lo + all[lo..].partition_point(|t| t.row < rows.end);
        RankMatrices::build_from_rows(&all[lo..hi], plan, rank, panel_height)
    }

    /// Builds the node's structures from a row-sorted slice holding exactly
    /// the rank's nonzeros in *global* coordinates — the entry point the
    /// streamed (out-of-core) pipeline uses with per-rank shards, and which
    /// [`RankMatrices::build`] feeds with a subslice of the resident matrix.
    /// Both paths walk entries in the same order, so they construct
    /// identical structures.
    ///
    /// # Panics
    ///
    /// Panics if `panel_height == 0`, or if the plan's layout dimensions
    /// exceed the small-index (`u32`) limit of the compact entry layout.
    pub fn build_from_rows(
        rank_triplets: &[Triplet],
        plan: &PartitionPlan,
        rank: usize,
        panel_height: usize,
    ) -> RankMatrices {
        assert!(panel_height > 0, "panel height must be positive");
        let layout = plan.layout();
        assert!(
            fits_small_index(layout.rows(), layout.cols()),
            "matrix dimensions exceed the u32 small-index limit of the compact rank structures"
        );
        let rows = layout.row_range(rank);
        let mut sync_entries: Vec<SmallTriplet> = Vec::new();
        let mut async_buckets: std::collections::BTreeMap<usize, Vec<SmallTriplet>> =
            std::collections::BTreeMap::new();
        for t in rank_triplets {
            debug_assert!(rows.contains(&t.row), "entry outside the rank's row block");
            let stripe = layout.stripe_of_col(t.col);
            let local = SmallTriplet::new(t.row - rows.start, t.col, t.val);
            match plan.class_of(rank, stripe).expect("every nonzero's stripe is classified") {
                StripeClass::Sync | StripeClass::LocalInput => sync_entries.push(local),
                StripeClass::Async => async_buckets.entry(stripe).or_default().push(local),
            }
        }
        // The input slice is row-major, so sync_entries already are; build
        // panels.
        let local_rows = rows.len();
        let num_panels = local_rows.div_ceil(panel_height).max(1);
        let mut panel_ptrs = Vec::with_capacity(num_panels + 1);
        panel_ptrs.push(0);
        let mut cursor = 0usize;
        for p in 0..num_panels {
            let row_end = (p + 1) * panel_height;
            while cursor < sync_entries.len() && (sync_entries[cursor].row as usize) < row_end {
                cursor += 1;
            }
            panel_ptrs.push(cursor);
        }
        debug_assert_eq!(*panel_ptrs.last().expect("non-empty"), sync_entries.len());

        let stripes = async_buckets
            .into_iter()
            .map(|(stripe, mut entries)| {
                // The bucket preserves a.iter()'s row-major order; snapshot it
                // before the column-major sort instead of re-sorting later.
                let entries_row_major = entries.clone();
                entries.sort_by_key(|t| (t.col, t.row));
                let mut unique_cols: Vec<u32> = entries.iter().map(|t| t.col).collect();
                unique_cols.dedup(); // sorted by col already
                AsyncStripe { stripe, entries, unique_cols, entries_row_major }
            })
            .collect();

        RankMatrices {
            sync_local: SyncLocalMatrix {
                local_rows,
                panel_height,
                entries: sync_entries,
                panel_ptrs,
            },
            asynchronous: AsyncMatrix { stripes },
        }
    }

    /// Total nonzeros across both structures.
    pub fn nnz(&self) -> usize {
        self.sync_local.nnz() + self.asynchronous.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoface_partition::{ModelCoefficients, OneDimLayout, PartitionPlan, PlanOptions};

    /// 8x8, 2 nodes, stripe width 2, with a mix of local and remote
    /// nonzeros; force-all-async and force-all-sync variants come from
    /// uniform plans.
    fn fixture() -> CooMatrix {
        CooMatrix::from_triplets(
            8,
            8,
            vec![
                (0, 0, 1.0),
                (0, 5, 2.0),
                (1, 1, 3.0),
                (2, 5, 4.0),
                (2, 4, 5.0),
                (3, 7, 6.0),
                (5, 0, 7.0),
                (7, 6, 8.0),
            ],
        )
        .unwrap()
    }

    fn layout() -> OneDimLayout {
        OneDimLayout::new(8, 8, 2, 2)
    }

    #[test]
    fn all_async_plan_routes_remote_nonzeros_to_async_matrix() {
        let a = fixture();
        let plan = PartitionPlan::build_uniform(&a, layout(), 4, StripeClass::Async);
        let m = RankMatrices::build(&a, &plan, 0, 2);
        // Node 0's local-input nonzeros: (0,0), (1,1) in stripes 0-1.
        assert_eq!(m.sync_local.nnz(), 2);
        // Remote: (0,5), (2,5), (2,4), (3,7) in stripes 2 and 3.
        assert_eq!(m.asynchronous.nnz(), 4);
        assert_eq!(m.asynchronous.num_stripes(), 2);
        let s2 = &m.asynchronous.stripes()[0];
        assert_eq!(s2.stripe, 2);
        assert_eq!(s2.unique_cols, vec![4, 5]);
        // Column-major: col 4 first, then col 5 rows ascending.
        let order: Vec<(u32, u32)> = s2.entries.iter().map(|t| (t.col, t.row)).collect();
        assert_eq!(order, vec![(4, 2), (5, 0), (5, 2)]);
        // The precomputed row-major view holds the same nonzeros sorted by
        // (row, col).
        let rm: Vec<(u32, u32)> = s2.entries_row_major().iter().map(|t| (t.row, t.col)).collect();
        assert_eq!(rm, vec![(0, 5), (2, 4), (2, 5)]);
    }

    #[test]
    fn all_sync_plan_keeps_everything_in_sync_matrix() {
        let a = fixture();
        let plan = PartitionPlan::build_uniform(&a, layout(), 4, StripeClass::Sync);
        let m = RankMatrices::build(&a, &plan, 0, 2);
        assert_eq!(m.sync_local.nnz(), 6);
        assert_eq!(m.asynchronous.nnz(), 0);
    }

    #[test]
    fn panels_partition_rows() {
        let a = fixture();
        let plan = PartitionPlan::build_uniform(&a, layout(), 4, StripeClass::Sync);
        let m = RankMatrices::build(&a, &plan, 0, 2);
        let sl = &m.sync_local;
        assert_eq!(sl.local_rows(), 4);
        assert_eq!(sl.num_panels(), 2);
        // Panel 0: local rows 0-1 => (0,0), (0,5), (1,1).
        assert_eq!(sl.panel(0).len(), 3);
        // Panel 1: local rows 2-3 => (2,4), (2,5), (3,7).
        assert_eq!(sl.panel(1).len(), 3);
        let total: usize = (0..sl.num_panels()).map(|p| sl.panel(p).len()).sum();
        assert_eq!(total, sl.nnz());
    }

    #[test]
    fn rows_are_rebased_per_node() {
        let a = fixture();
        let plan = PartitionPlan::build_uniform(&a, layout(), 4, StripeClass::Async);
        let m1 = RankMatrices::build(&a, &plan, 1, 2);
        // Node 1 rows 4..8: (5,0) remote, (7,6) local.
        assert_eq!(m1.sync_local.nnz(), 1);
        assert_eq!(m1.sync_local.entries()[0].row, 3); // global row 7
        assert_eq!(m1.asynchronous.nnz(), 1);
        assert_eq!(m1.asynchronous.stripes()[0].entries[0].row, 1); // global row 5
    }

    #[test]
    fn model_built_plan_conserves_nonzeros() {
        let a = fixture();
        let plan = PartitionPlan::build(
            &a,
            layout(),
            &ModelCoefficients::table3(),
            4,
            PlanOptions::default(),
        );
        let total: usize = (0..2).map(|rank| RankMatrices::build(&a, &plan, rank, 2).nnz()).sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn nonempty_panel_count_skips_gaps() {
        // Single nonzero in the last local row of node 0 => 1 non-empty of 2.
        let a = CooMatrix::from_triplets(8, 8, vec![(3, 0, 1.0), (4, 0, 1.0)]).unwrap();
        let plan = PartitionPlan::build_uniform(&a, layout(), 4, StripeClass::Sync);
        let m = RankMatrices::build(&a, &plan, 0, 2);
        assert_eq!(m.sync_local.num_panels(), 2);
        assert_eq!(m.sync_local.num_nonempty_panels(), 1);
    }
}
