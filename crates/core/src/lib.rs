//! The Two-Face distributed SpMM algorithm and its baselines.
//!
//! This crate is the paper's primary contribution: the [`Algorithm::TwoFace`]
//! executor (Algorithms 1–3), the Figure-6 [`format`] structures, the local
//! [`kernels`], the row [`coalesce_rows`] optimization, and all four
//! baselines of Table 4 (Dense Shifting, Allgather, Async Coarse, Async
//! Fine) — driven by [`run_algorithm`] on the simulated cluster from
//! [`twoface_net`].
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use twoface_core::{run_algorithm, Algorithm, Problem, RunOptions};
//! use twoface_matrix::gen::{webcrawl, WebcrawlConfig};
//! use twoface_net::CostModel;
//!
//! # fn main() -> Result<(), twoface_core::RunError> {
//! // A small host-clustered web graph on 4 simulated nodes, K = 16.
//! let a = Arc::new(webcrawl(
//!     &WebcrawlConfig { n: 512, hosts: 32, per_row: 8, ..Default::default() },
//!     1,
//! ));
//! let problem = Problem::with_generated_b(a, 16, 4, 32)?;
//! let cost = CostModel::delta();
//! let options = RunOptions { validate: true, ..Default::default() };
//!
//! let two_face = run_algorithm(Algorithm::TwoFace, &problem, &cost, &options)?;
//! let baseline = run_algorithm(
//!     Algorithm::DenseShifting { replication: 2 },
//!     &problem,
//!     &cost,
//!     &options,
//! )?;
//! println!(
//!     "Two-Face {:.4}s vs DS2 {:.4}s",
//!     two_face.seconds, baseline.seconds
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod algo;
mod coalesce;
mod config;
mod error;
mod format;
pub mod gnn;
pub mod kernels;
pub mod pool;
mod prepared;
mod reference;
mod runner;
pub mod sampling;
pub mod sddmm;
pub mod stream;

pub use algo::auto::{
    auto_candidates, predict, predict_latency, resolve_auto, spmm_stats, AutoChoice,
};
pub use algo::Algorithm;
pub use coalesce::{coalesce_rows, runs_to_rows, RowRun};
pub use config::{AsyncLayout, TwoFaceConfig};
pub use error::RunError;
pub use format::{AsyncMatrix, AsyncStripe, RankMatrices, SyncLocalMatrix};
pub use prepared::PreparedMatrix;
pub use reference::{reference_spmm, reference_spmm_pooled};
pub use runner::{
    generated_b_block, prepare_plan, prepare_plan_with_classifier, run_algorithm, run_algorithm_on,
    run_spmv, Breakdown, ExecutionReport, Problem, RunOptions, PROFILE_ENV, TRACE_ENV,
};
pub use stream::{peak_rss_bytes, run_twoface_streamed, StreamOptions, StreamedRun};
