//! Full-graph GNN training on top of distributed SpMM (§5.4).
//!
//! The paper motivates Two-Face with full-graph GNN training, where the same
//! sparse adjacency matrix is reused for hundreds of SpMM operations and the
//! preprocessing cost amortizes away. This module provides a minimal
//! graph-convolution layer (`H' = σ(Â · H · W)`) whose aggregation step runs
//! through any of the distributed algorithms, plus an epoch driver used by
//! the `gnn_training` example and the preprocessing-amortization analysis.

use crate::{run_algorithm, Algorithm, Problem, RunError, RunOptions};
use std::sync::Arc;
use twoface_matrix::{CooMatrix, DenseMatrix};
use twoface_net::CostModel;

/// The activation applied after a GCN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// No activation (e.g. for the final layer).
    Identity,
}

impl Activation {
    fn apply(self, m: &mut DenseMatrix) {
        if self == Activation::Relu {
            m.map_inplace(|v| v.max(0.0));
        }
    }
}

/// One graph-convolution layer: `H' = σ(Â · H · W)`.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    /// The dense weight matrix `W` (`in_features x out_features`).
    pub weights: DenseMatrix,
    /// The activation `σ`.
    pub activation: Activation,
}

impl GcnLayer {
    /// Creates a layer with deterministic pseudo-random weights in
    /// `[-0.5, 0.5)`, scaled by `1/sqrt(in_features)` (Xavier-style).
    pub fn new(
        in_features: usize,
        out_features: usize,
        seed: u64,
        activation: Activation,
    ) -> GcnLayer {
        let scale = 1.0 / (in_features.max(1) as f64).sqrt();
        let weights = DenseMatrix::from_fn(in_features, out_features, |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((j as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
                .wrapping_add(seed.wrapping_mul(0xD6E8FEB86659FD93));
            let h = (h ^ (h >> 33)).wrapping_mul(0xFF51AFD7ED558CCD);
            (((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5) * scale
        });
        GcnLayer { weights, activation }
    }

    /// Applies the layer: distributed SpMM for the aggregation `Â · H`,
    /// then the local dense `· W` and activation.
    ///
    /// Returns the new embeddings and the simulated seconds the aggregation
    /// took.
    ///
    /// # Errors
    ///
    /// Propagates [`run_algorithm`] errors.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        adjacency: &Arc<CooMatrix>,
        h: &DenseMatrix,
        algorithm: Algorithm,
        p: usize,
        stripe_width: usize,
        cost: &CostModel,
        options: &RunOptions,
    ) -> Result<(DenseMatrix, f64), RunError> {
        let problem = Problem::new(Arc::clone(adjacency), Arc::new(h.clone()), p, stripe_width)?;
        let report = run_algorithm(algorithm, &problem, cost, options)?;
        let aggregated = report.output.expect("GNN layers run with compute_values enabled");
        let mut out = aggregated.matmul(&self.weights);
        self.activation.apply(&mut out);
        Ok((out, report.seconds))
    }
}

/// Normalizes an adjacency matrix GCN-style: `Â = D^-1 (A + I)` (row
/// normalization of the self-looped graph).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn normalize_adjacency(a: &CooMatrix) -> CooMatrix {
    assert_eq!(a.rows(), a.cols(), "adjacency matrices are square");
    let n = a.rows();
    let with_loops: Vec<(usize, usize, f64)> =
        a.iter().map(|(r, c, _)| (r, c, 1.0)).chain((0..n).map(|i| (i, i, 1.0))).collect();
    let summed = CooMatrix::from_triplets(n, n, with_loops).expect("coordinates in bounds");
    let degrees = summed.row_counts();
    let normalized: Vec<(usize, usize, f64)> =
        summed.iter().map(|(r, c, v)| (r, c, v / degrees[r] as f64)).collect();
    CooMatrix::from_triplets(n, n, normalized).expect("coordinates in bounds")
}

/// Summary of a multi-epoch full-graph training simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSummary {
    /// Simulated seconds of SpMM aggregation per epoch.
    pub epoch_seconds: Vec<f64>,
    /// Final embedding Frobenius norm (a cheap fingerprint of the result).
    pub final_norm: f64,
}

/// Runs `epochs` forward passes of a two-layer GCN, reusing the same
/// preprocessed plan for every SpMM — the amortization argument of §5.4.
///
/// # Errors
///
/// Propagates [`run_algorithm`] errors.
#[allow(clippy::too_many_arguments)]
pub fn train_gcn(
    adjacency: &Arc<CooMatrix>,
    features: &DenseMatrix,
    hidden: usize,
    epochs: usize,
    algorithm: Algorithm,
    p: usize,
    stripe_width: usize,
    cost: &CostModel,
    options: &RunOptions,
) -> Result<TrainingSummary, RunError> {
    let layer1 = GcnLayer::new(features.cols(), hidden, 1, Activation::Relu);
    let layer2 = GcnLayer::new(hidden, features.cols(), 2, Activation::Identity);
    let mut epoch_seconds = Vec::with_capacity(epochs);
    let mut h = features.clone();
    for _ in 0..epochs {
        let (h1, t1) = layer1.forward(adjacency, &h, algorithm, p, stripe_width, cost, options)?;
        let (h2, t2) = layer2.forward(adjacency, &h1, algorithm, p, stripe_width, cost, options)?;
        epoch_seconds.push(t1 + t2);
        // Keep magnitudes bounded across epochs so the fingerprint stays
        // finite (this is a systems benchmark, not a learning one).
        h = h2;
        let norm = h.frobenius_norm();
        if norm > 0.0 {
            h.scale(features.frobenius_norm() / norm);
        }
    }
    Ok(TrainingSummary { epoch_seconds, final_norm: h.frobenius_norm() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twoface_matrix::gen::erdos_renyi;

    #[test]
    fn normalize_adds_self_loops_and_row_normalizes() {
        let a = CooMatrix::from_triplets(3, 3, vec![(0, 1, 5.0), (0, 2, 7.0)]).unwrap();
        let n = normalize_adjacency(&a);
        // Row 0: entries (0,0),(0,1),(0,2) each 1/3.
        let row0: Vec<_> = n.iter().filter(|&(r, _, _)| r == 0).collect();
        assert_eq!(row0.len(), 3);
        for (_, _, v) in row0 {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
        // Row 1: only the self loop, weight 1.
        let row1: Vec<_> = n.iter().filter(|&(r, _, _)| r == 1).collect();
        assert_eq!(row1, vec![(1, 1, 1.0)]);
    }

    #[test]
    fn forward_matches_reference_pipeline() {
        let a = Arc::new(normalize_adjacency(&erdos_renyi(32, 32, 100, 5)));
        let h = DenseMatrix::from_fn(32, 4, |i, j| ((i + j) % 5) as f64);
        let layer = GcnLayer::new(4, 4, 9, Activation::Relu);
        let (out, seconds) = layer
            .forward(&a, &h, Algorithm::TwoFace, 2, 8, &CostModel::delta(), &RunOptions::default())
            .unwrap();
        assert!(seconds > 0.0);
        // Reference: serial aggregation then matmul + relu.
        let mut want = crate::reference_spmm(&a, &h).matmul(&layer.weights);
        want.map_inplace(|v| v.max(0.0));
        assert!(out.approx_eq(&want, 1e-9));
    }

    #[test]
    fn training_runs_and_is_deterministic() {
        let a = Arc::new(normalize_adjacency(&erdos_renyi(48, 48, 200, 3)));
        let h = DenseMatrix::from_fn(48, 4, |i, j| (i * 4 + j) as f64 / 100.0);
        let run = || {
            train_gcn(
                &a,
                &h,
                8,
                3,
                Algorithm::TwoFace,
                3,
                8,
                &CostModel::delta(),
                &RunOptions::default(),
            )
            .unwrap()
        };
        let s1 = run();
        let s2 = run();
        assert_eq!(s1, s2);
        assert_eq!(s1.epoch_seconds.len(), 3);
        assert!(s1.epoch_seconds.iter().all(|&t| t > 0.0));
        assert!(s1.final_norm.is_finite());
    }
}
