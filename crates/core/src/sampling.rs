//! Sampled / mini-batch GNN support (§5.4's future-work sketch).
//!
//! The paper notes Two-Face is incompatible with sampling as-is, because
//! each sampled iteration uses a different reduced matrix and re-running
//! preprocessing every time would be prohibitive. Its proposed fix:
//! *classify once, offline, on the expected densities; at runtime keep the
//! Figure-6 storage and apply per-iteration masks that filter the
//! eliminated nonzeros.* This module implements that sketch:
//!
//! * [`EdgeSampler`] derives a deterministic per-epoch [`EdgeMask`] — each
//!   nonzero survives with probability `keep_probability`, decided by a hash
//!   of `(row, col, epoch, seed)`, so every rank agrees on the mask without
//!   any communication;
//! * [`run_sampled_twoface`] executes a normal Two-Face SpMM against the
//!   *fixed* plan while skipping masked nonzeros: synchronous multicasts
//!   keep their offline schedule (the stripes were classified for expected
//!   density), and asynchronous stripes shrink their fetches to exactly the
//!   rows the surviving nonzeros reference — fully masked stripes transfer
//!   nothing.

use crate::algo::twoface::{twoface_rank_masked, TwoFaceData};
use crate::reference::reference_spmm;
use crate::runner::{ExecOpts, Problem};
use crate::{RunError, RunOptions};
use std::sync::Arc;
use twoface_matrix::{CooMatrix, DenseMatrix};
use twoface_net::{Cluster, CostModel, MetricsRegistry};
use twoface_partition::PartitionPlan;

/// Derives deterministic per-epoch edge masks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeSampler {
    /// Probability each nonzero survives an epoch's mask.
    pub keep_probability: f64,
    /// Base seed; different seeds give independent mask sequences.
    pub seed: u64,
}

impl EdgeSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if `keep_probability` is not in `[0, 1]`.
    pub fn new(keep_probability: f64, seed: u64) -> EdgeSampler {
        assert!((0.0..=1.0).contains(&keep_probability), "keep_probability must be a probability");
        EdgeSampler { keep_probability, seed }
    }

    /// The mask for one training epoch.
    pub fn mask(&self, epoch: u64) -> EdgeMask {
        EdgeMask {
            threshold: (self.keep_probability * u64::MAX as f64) as u64,
            salt: self
                .seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(epoch.wrapping_mul(0xC2B2AE3D27D4EB4F)),
        }
    }
}

/// One epoch's deterministic nonzero filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeMask {
    threshold: u64,
    salt: u64,
}

impl EdgeMask {
    /// Whether the nonzero at global `(row, col)` survives this epoch.
    pub fn is_active(&self, row: usize, col: usize) -> bool {
        let mut h = (row as u64)
            .wrapping_mul(0xD6E8FEB86659FD93)
            .wrapping_add((col as u64).wrapping_mul(0xFF51AFD7ED558CCD))
            .wrapping_add(self.salt);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CEB9FE1A85EC53);
        h ^= h >> 29;
        h <= self.threshold
    }

    /// Materializes the sampled matrix (used by correctness oracles; the
    /// runtime never builds it).
    pub fn apply(&self, a: &CooMatrix) -> CooMatrix {
        let triplets: Vec<_> =
            a.triplets().iter().filter(|t| self.is_active(t.row, t.col)).copied().collect();
        CooMatrix::from_sorted_triplets(a.rows(), a.cols(), triplets)
            .expect("filtering preserves order and bounds")
    }
}

/// Result of one sampled SpMM epoch.
#[derive(Debug, Clone)]
pub struct SampledReport {
    /// Simulated execution time (latest rank finish).
    pub seconds: f64,
    /// Dense elements transferred this epoch.
    pub elements_received: u64,
    /// Surviving nonzeros this epoch.
    pub active_nnz: usize,
    /// Counters and histograms merged across ranks (empty unless
    /// [`RunOptions::observability`] enabled recording).
    pub metrics: MetricsRegistry,
    /// The epoch's output, when values were computed.
    pub output: Option<DenseMatrix>,
}

/// Runs one sampled Two-Face SpMM epoch against a fixed plan.
///
/// The plan must come from the *full* matrix's one-time preprocessing; the
/// mask only filters nonzeros at runtime, exactly as §5.4 proposes.
///
/// # Errors
///
/// Returns [`RunError::ValidationFailed`] when `options.validate` is set and
/// the output disagrees with a serial SpMM over the masked matrix.
pub fn run_sampled_twoface(
    problem: &Problem,
    plan: Arc<PartitionPlan>,
    mask: EdgeMask,
    cost: &CostModel,
    options: &RunOptions,
) -> Result<SampledReport, RunError> {
    let k = problem.k();
    let workers = crate::pool::resolve_workers(options.workers);
    let exec = ExecOpts {
        k,
        compute: options.compute_values || options.validate,
        panel_height: options.config.row_panel_height,
        workers,
    };
    let effective = options.config.effective_cost(cost);
    let data = TwoFaceData::build(problem, plan, &options.config, &crate::pool::Pool::new(workers));
    let p = problem.layout.nodes();
    let cluster = Cluster::new(p, effective);
    cluster.set_fault_plan(options.fault_plan.clone());
    cluster.set_observability(options.observability.clone());
    let outputs = cluster
        .run(|ctx| twoface_rank_masked(ctx, &data, problem, &options.config, &exec, Some(&mask)));

    let mut rank_results = Vec::with_capacity(p);
    for o in &outputs {
        match &o.result {
            Ok(block) => rank_results.push(block),
            Err(e) => return Err(RunError::from_net(o.rank, e.clone())),
        }
    }
    let seconds = outputs.iter().map(|o| o.finish_time().seconds()).fold(0.0, f64::max);
    let elements_received = outputs.iter().map(|o| o.trace.elements_received).sum();
    let mut metrics = MetricsRegistry::new();
    for o in &outputs {
        metrics.merge(&o.metrics);
    }
    let sampled = mask.apply(&problem.a);
    let output = if exec.compute {
        let mut flat = Vec::with_capacity(problem.a.rows() * k);
        for block in &rank_results {
            flat.extend_from_slice(block);
        }
        Some(DenseMatrix::from_vec(problem.a.rows(), k, flat).expect("blocks tile C"))
    } else {
        None
    };
    if options.validate {
        let got = output.as_ref().expect("validate implies compute");
        let want = reference_spmm(&sampled, &problem.b);
        if !got.approx_eq(&want, 1e-9) {
            return Err(RunError::ValidationFailed { max_abs_diff: got.max_abs_diff(&want) });
        }
    }
    Ok(SampledReport { seconds, elements_received, active_nnz: sampled.nnz(), metrics, output })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare_plan;
    use twoface_matrix::gen::{webcrawl, WebcrawlConfig};
    use twoface_partition::ModelCoefficients;

    fn fixture() -> (Problem, Arc<PartitionPlan>, CostModel) {
        let a = webcrawl(
            &WebcrawlConfig {
                n: 512,
                hosts: 16,
                per_row: 6,
                intra_host: 0.7,
                ..Default::default()
            },
            55,
        );
        let problem = Problem::with_generated_b(Arc::new(a), 8, 4, 32).expect("valid");
        let cost = CostModel::delta_scaled();
        let plan = Arc::new(prepare_plan(&problem, &ModelCoefficients::from(&cost), &cost));
        (problem, plan, cost)
    }

    #[test]
    fn masks_are_deterministic_and_epoch_dependent() {
        let sampler = EdgeSampler::new(0.5, 9);
        let m1 = sampler.mask(0);
        let m2 = sampler.mask(0);
        let m3 = sampler.mask(1);
        assert_eq!(m1, m2);
        assert_ne!(m1, m3);
        // Epoch masks actually differ in effect.
        let a = webcrawl(&WebcrawlConfig { n: 256, ..Default::default() }, 1);
        assert_ne!(m1.apply(&a), m3.apply(&a));
    }

    #[test]
    fn keep_probability_is_respected_approximately() {
        let sampler = EdgeSampler::new(0.3, 4);
        let mask = sampler.mask(7);
        let a = webcrawl(&WebcrawlConfig { n: 2048, per_row: 10, ..Default::default() }, 2);
        let kept = mask.apply(&a).nnz() as f64 / a.nnz() as f64;
        assert!((0.25..0.35).contains(&kept), "kept fraction {kept}");
    }

    #[test]
    fn extreme_probabilities() {
        let a = webcrawl(&WebcrawlConfig { n: 256, ..Default::default() }, 3);
        assert_eq!(EdgeSampler::new(1.0, 1).mask(0).apply(&a), a);
        assert_eq!(EdgeSampler::new(0.0, 1).mask(0).apply(&a).nnz(), 0);
    }

    #[test]
    fn sampled_epoch_validates_against_masked_reference() {
        let (problem, plan, cost) = fixture();
        let sampler = EdgeSampler::new(0.6, 11);
        for epoch in 0..3 {
            let report = run_sampled_twoface(
                &problem,
                Arc::clone(&plan),
                sampler.mask(epoch),
                &cost,
                &RunOptions { validate: true, ..Default::default() },
            )
            .unwrap_or_else(|e| panic!("epoch {epoch} failed: {e}"));
            assert!(report.active_nnz > 0);
            assert!(report.active_nnz < problem.a.nnz());
        }
    }

    #[test]
    fn sampling_reduces_async_transfer_volume() {
        let (problem, plan, cost) = fixture();
        let full = run_sampled_twoface(
            &problem,
            Arc::clone(&plan),
            EdgeSampler::new(1.0, 1).mask(0),
            &cost,
            &RunOptions { compute_values: false, ..Default::default() },
        )
        .unwrap();
        let sampled = run_sampled_twoface(
            &problem,
            Arc::clone(&plan),
            EdgeSampler::new(0.2, 1).mask(0),
            &cost,
            &RunOptions { compute_values: false, ..Default::default() },
        )
        .unwrap();
        // Sync multicasts keep their offline schedule, but async fetches
        // shrink with the mask, so total volume must not grow — and with an
        // async-heavy fixture it strictly shrinks.
        assert!(
            sampled.elements_received <= full.elements_received,
            "sampling increased traffic: {} > {}",
            sampled.elements_received,
            full.elements_received
        );
        assert!(sampled.seconds <= full.seconds + 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = EdgeSampler::new(1.5, 0);
    }
}
