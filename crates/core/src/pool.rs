//! A std-only work-sharing thread pool for intra-rank parallelism.
//!
//! The simulated cluster already runs one OS thread per rank; this pool
//! parallelizes the work *inside* a rank body (row panels, asynchronous
//! stripe entries, preprocessing) plus the serial verification oracle. It is
//! deliberately minimal: a [`Pool`] is just a worker count, and every
//! parallel region spawns scoped workers that pull tasks from a shared
//! atomic counter (work sharing, not work stealing). There are no persistent
//! threads, channels, or external dependencies, and the caller's thread
//! always participates as worker 0 — a pool of width 1 never spawns.
//!
//! # Determinism contract
//!
//! The pool schedules *which worker* runs a task dynamically, so callers
//! must only submit tasks whose combined result is independent of
//! assignment: tasks that write disjoint output slots (row panels, per-rank
//! preprocessing) or whose results are collected by task index and reduced
//! in a fixed order. Every helper in this crate built on the pool produces
//! bit-identical output for any worker count — see the `parallel
//! determinism` integration tests.
//!
//! Worker counts are *orthogonal* to the modeled thread counts in
//! [`crate::TwoFaceConfig`]: those scale the analytic cost model (simulated
//! seconds), while the pool scales host wall-clock time. Changing the worker
//! count never changes a simulated timing or an output bit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable overriding the default worker count.
pub const WORKERS_ENV: &str = "TWOFACE_THREADS";

/// Resolves a worker count: an explicit request wins, then the
/// `TWOFACE_THREADS` environment variable, then the host's available
/// parallelism. Always at least 1.
pub fn resolve_workers(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| std::env::var(WORKERS_ENV).ok().and_then(|v| v.parse().ok()))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// An optional host wall-clock stopwatch for profiling real kernel
/// executions behind simulated spans.
///
/// Wall time is the one observability field that is *not* deterministic, so
/// it is only measured when explicitly enabled
/// ([`Observability::wall_time`](twoface_net::Observability)); a disabled
/// timer never reads the clock and reports `None`, which exporters render
/// as `null` so same-seed traces stay bitwise comparable.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer(Option<Instant>);

impl WallTimer {
    /// Starts a timer, reading the host clock only when `enabled`.
    pub fn start(enabled: bool) -> WallTimer {
        WallTimer(enabled.then(Instant::now))
    }

    /// Nanoseconds since [`WallTimer::start`], or `None` when disabled.
    pub fn elapsed_nanos(&self) -> Option<u64> {
        self.0.map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

/// A work-sharing pool of `workers` threads (including the caller).
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool that runs everything on the caller's thread.
    pub const SERIAL: Pool = Pool { workers: 1 };

    /// Creates a pool of `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Pool {
        assert!(workers > 0, "a pool needs at least one worker");
        Pool { workers }
    }

    /// A pool sized by [`resolve_workers`] with no explicit request:
    /// `TWOFACE_THREADS` if set, otherwise the available parallelism.
    pub fn from_env() -> Pool {
        Pool::new(resolve_workers(None))
    }

    /// The worker count (including the caller's thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(i)` once for every `i in 0..tasks`, sharing tasks across
    /// workers via an atomic counter. Returns after all tasks finish.
    ///
    /// Task-to-worker assignment is nondeterministic; see the module-level
    /// determinism contract.
    ///
    /// # Panics
    ///
    /// Propagates the first worker panic observed (via scoped-thread join).
    pub fn run<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.workers == 1 || tasks <= 1 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            f(i);
        };
        std::thread::scope(|scope| {
            for _ in 1..self.workers.min(tasks) {
                scope.spawn(work);
            }
            work();
        });
    }

    /// Parallel map: returns `[f(0), f(1), ..., f(tasks - 1)]` in task
    /// order regardless of which worker produced each result.
    ///
    /// # Panics
    ///
    /// Propagates worker panics.
    pub fn map<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.workers == 1 || tasks <= 1 {
            return (0..tasks).map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        self.run(tasks, |i| {
            *slots[i].lock().expect("result slot poisoned") = Some(f(i));
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("result slot poisoned").expect("every task ran"))
            .collect()
    }

    /// Runs `f` on every item of `items`, popping items from a shared queue
    /// so faster workers take more. Items may own mutable borrows (e.g.
    /// disjoint `&mut` chunks of one output buffer), which is how kernels
    /// hand each worker its exclusive slice of `C`.
    ///
    /// # Panics
    ///
    /// Propagates worker panics.
    pub fn run_items<T, I, F>(&self, items: I, f: F)
    where
        T: Send,
        I: Iterator<Item = T> + Send,
        F: Fn(T) + Sync,
    {
        if self.workers == 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let queue = Mutex::new(items);
        let work = || {
            loop {
                // Pop under the lock, run outside it.
                let Some(item) = queue.lock().expect("work queue poisoned").next() else {
                    break;
                };
                f(item);
            }
        };
        std::thread::scope(|scope| {
            for _ in 1..self.workers {
                scope.spawn(work);
            }
            work();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_every_task_exactly_once() {
        for workers in [1, 2, 4, 7] {
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            Pool::new(workers).run(100, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "{workers} workers");
        }
    }

    #[test]
    fn map_preserves_task_order() {
        for workers in [1, 3, 8] {
            let out = Pool::new(workers).map(50, |i| i * i);
            assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>(), "{workers} workers");
        }
    }

    #[test]
    fn run_items_visits_mutable_chunks_disjointly() {
        let mut buf = vec![0usize; 64];
        Pool::new(4).run_items(buf.chunks_mut(8).enumerate(), |(idx, chunk)| {
            for v in chunk {
                *v = idx + 1;
            }
        });
        for (idx, chunk) in buf.chunks(8).enumerate() {
            assert!(chunk.iter().all(|&v| v == idx + 1));
        }
    }

    #[test]
    fn zero_and_one_tasks_are_fine() {
        Pool::new(4).run(0, |_| panic!("no tasks to run"));
        let one = Pool::new(4).map(1, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn explicit_count_beats_environment() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert!(resolve_workers(None) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_worker_pool_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn disabled_wall_timer_reports_nothing() {
        assert_eq!(WallTimer::start(false).elapsed_nanos(), None);
        let enabled = WallTimer::start(true);
        assert!(enabled.elapsed_nanos().is_some());
    }
}
