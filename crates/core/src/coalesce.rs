//! Row-run coalescing for asynchronous transfers (§5.2.3).
//!
//! A fine-grained get of scattered `B` rows is issued as one `MPI_Rget` with
//! an indexed datatype listing contiguous `(offset, size)` runs. Nearby rows
//! are merged into one run even across small gaps of *unused* rows: the
//! useless rows cost bandwidth but save per-run software overhead, which is
//! why the maximum merge distance shrinks as `K` grows (Table 2).

/// A contiguous run of rows: `(first_row, num_rows)`.
pub type RowRun = (usize, usize);

/// Coalesces an ascending list of distinct needed rows into contiguous runs.
///
/// Two consecutive needed rows `a < b` land in the same run when
/// `b - a <= max_distance`; any skipped rows in between are transferred as
/// useless padding. `max_distance == 1` merges only adjacent rows (no
/// padding).
///
/// Returns `(runs, padding)` where `padding` counts the useless rows
/// included.
///
/// # Panics
///
/// Panics if `max_distance == 0` or `rows` is not strictly ascending.
///
/// # Example
///
/// The paper's example: rows `{2, 3, 6, 8}` yield `{(2,2), (6,1), (8,1)}`
/// without gap-merging, or `{(2,2), (6,3)}` when one-row gaps are allowed.
///
/// ```
/// use twoface_core::coalesce_rows;
///
/// let rows = [2, 3, 6, 8];
/// assert_eq!(coalesce_rows(&rows, 1), (vec![(2, 2), (6, 1), (8, 1)], 0));
/// assert_eq!(coalesce_rows(&rows, 2), (vec![(2, 2), (6, 3)], 1));
/// ```
pub fn coalesce_rows(rows: &[usize], max_distance: usize) -> (Vec<RowRun>, usize) {
    assert!(max_distance > 0, "max coalescing distance must be at least 1");
    let mut runs: Vec<RowRun> = Vec::new();
    let mut padding = 0usize;
    let mut iter = rows.iter().copied();
    let Some(first) = iter.next() else {
        return (runs, 0);
    };
    let (mut start, mut last) = (first, first);
    for row in iter {
        assert!(row > last, "rows must be strictly ascending (got {row} after {last})");
        if row - last <= max_distance {
            padding += row - last - 1;
            last = row;
        } else {
            runs.push((start, last - start + 1));
            start = row;
            last = row;
        }
    }
    runs.push((start, last - start + 1));
    (runs, padding)
}

/// The rows a set of runs actually transfers, in order (needed + padding).
///
/// Mostly useful for tests and the coalescing ablation, which needs to map
/// fetched buffers back to row ids.
pub fn runs_to_rows(runs: &[RowRun]) -> Vec<usize> {
    runs.iter().flat_map(|&(start, n)| start..start + n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_no_runs() {
        assert_eq!(coalesce_rows(&[], 1), (vec![], 0));
    }

    #[test]
    fn singleton() {
        assert_eq!(coalesce_rows(&[5], 3), (vec![(5, 1)], 0));
    }

    #[test]
    fn adjacent_rows_always_merge() {
        assert_eq!(coalesce_rows(&[1, 2, 3, 4], 1), (vec![(1, 4)], 0));
    }

    #[test]
    fn paper_example_distance_one() {
        let (runs, padding) = coalesce_rows(&[2, 3, 6, 8], 1);
        assert_eq!(runs, vec![(2, 2), (6, 1), (8, 1)]);
        assert_eq!(padding, 0);
    }

    #[test]
    fn paper_example_distance_two_pads_row_seven() {
        let (runs, padding) = coalesce_rows(&[2, 3, 6, 8], 2);
        assert_eq!(runs, vec![(2, 2), (6, 3)]);
        assert_eq!(padding, 1);
    }

    #[test]
    fn huge_distance_gives_single_run() {
        let (runs, padding) = coalesce_rows(&[0, 10, 20], 100);
        assert_eq!(runs, vec![(0, 21)]);
        assert_eq!(padding, 18);
    }

    #[test]
    fn runs_cover_exactly_needed_plus_padding() {
        let needed = [3, 4, 9, 11, 30];
        let (runs, padding) = coalesce_rows(&needed, 3);
        let transferred = runs_to_rows(&runs);
        // Every needed row is covered.
        for r in needed {
            assert!(transferred.contains(&r));
        }
        assert_eq!(transferred.len(), needed.len() + padding);
        // Runs are disjoint and ascending.
        for w in runs.windows(2) {
            assert!(w[0].0 + w[0].1 < w[1].0 + 1, "runs overlap or touch: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_input_panics() {
        let _ = coalesce_rows(&[5, 3], 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_distance_panics() {
        let _ = coalesce_rows(&[1], 0);
    }
}
