//! Criterion benchmarks for whole simulated executions: wall-clock cost of
//! driving the simulator, per algorithm.
//!
//! These measure *host* time (how fast the simulator itself runs), not
//! simulated time — useful for keeping the harness responsive as the
//! simulator evolves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use twoface_core::{run_algorithm, Algorithm, Problem, RunOptions};
use twoface_matrix::gen::{webcrawl, WebcrawlConfig};
use twoface_net::CostModel;

fn bench_end_to_end(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("simulated_execution");
    group.sample_size(10);
    let a = Arc::new(webcrawl(
        &WebcrawlConfig { n: 8192, hosts: 128, per_row: 10, ..Default::default() },
        5,
    ));
    let problem = Problem::with_generated_b(a, 32, 8, 64).expect("valid problem");
    let cost = CostModel::delta_scaled();
    for (label, algorithm, compute) in [
        ("twoface_full_compute", Algorithm::TwoFace, true),
        ("twoface_structural", Algorithm::TwoFace, false),
        ("ds2_full_compute", Algorithm::DenseShifting { replication: 2 }, true),
        ("allgather_full_compute", Algorithm::Allgather, true),
        ("async_fine_full_compute", Algorithm::AsyncFine, true),
    ] {
        let options = RunOptions { compute_values: compute, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &options, |bench, options| {
            bench.iter(|| {
                run_algorithm(black_box(algorithm), &problem, &cost, options)
                    .expect("benchmark problems fit")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
