//! Criterion microbenchmarks for the local SpMM kernels: the row-major
//! row-panel kernel vs the column-major per-nonzero kernel, across K.
//!
//! On real hardware the column-major kernel additionally pays one atomic per
//! nonzero; here the benchmark isolates the layout/traversal cost that the
//! `γ` coefficients abstract.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use twoface_core::kernels::{async_stripe_kernel, sync_panel_kernel, BlockRows, RowSource};
use twoface_matrix::gen::erdos_renyi;
use twoface_matrix::Triplet;

const N: usize = 4096;
const NNZ: usize = 40_000;

fn make_inputs(k: usize) -> (Vec<Triplet>, Vec<Triplet>, BlockRows, Vec<f64>) {
    let m = erdos_renyi(N, N, NNZ, 42);
    let row_major: Vec<Triplet> = m.triplets().to_vec();
    let mut col_major = row_major.clone();
    col_major.sort_by(|a, b| (a.col, a.row).cmp(&(b.col, b.row)));
    let mut rows = BlockRows::new(k);
    let b: Vec<f64> = (0..N * k).map(|i| (i % 17) as f64 * 0.25).collect();
    rows.add_block(0..N, Arc::new(b));
    let c = vec![0.0; N * k];
    (row_major, col_major, rows, c)
}

fn bench_kernels(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("local_spmm_kernels");
    for k in [8usize, 32, 128] {
        let (row_major, col_major, rows, c) = make_inputs(k);
        group.throughput(Throughput::Elements((row_major.len() * k) as u64));
        group.bench_with_input(BenchmarkId::new("sync_row_panel", k), &k, |bench, &k| {
            bench.iter_batched(
                || c.clone(),
                |mut c| sync_panel_kernel(black_box(&row_major), &rows, &mut c, k),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("async_column_major", k), &k, |bench, &k| {
            bench.iter_batched(
                || c.clone(),
                |mut c| async_stripe_kernel(black_box(&col_major), &rows, &mut c, k),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_row_source(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("row_source_lookup");
    let k = 32;
    let mut rows = BlockRows::new(k);
    // 32 blocks, as a 32-node layout would register.
    for block in 0..32 {
        let cols = block * 128..(block + 1) * 128;
        rows.add_block(cols, Arc::new(vec![1.0; 128 * k]));
    }
    group.bench_function("block_rows_row", |bench| {
        let mut i = 0usize;
        bench.iter(|| {
            i = (i.wrapping_mul(2654435761)).wrapping_add(1) % (32 * 128);
            black_box(rows.row(i));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_row_source);
criterion_main!(benches);
