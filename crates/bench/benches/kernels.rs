//! Criterion microbenchmarks for the local SpMM kernels: the row-major
//! row-panel kernel vs the column-major per-nonzero kernel, across K.
//!
//! On real hardware the column-major kernel additionally pays one atomic per
//! nonzero; here the benchmark isolates the layout/traversal cost that the
//! `γ` coefficients abstract.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use twoface_core::kernels::{
    async_stripe_kernel, sync_panel_kernel, BlockRows, FetchedRows, RowCursor, RowSource,
};
use twoface_matrix::gen::erdos_renyi;
use twoface_matrix::Triplet;

const N: usize = 4096;
const NNZ: usize = 40_000;

fn make_inputs(k: usize) -> (Vec<Triplet>, Vec<Triplet>, BlockRows, Vec<f64>) {
    let m = erdos_renyi(N, N, NNZ, 42);
    let row_major: Vec<Triplet> = m.triplets().to_vec();
    let mut col_major = row_major.clone();
    col_major.sort_by_key(|t| (t.col, t.row));
    let mut rows = BlockRows::new(k);
    let b: Vec<f64> = (0..N * k).map(|i| (i % 17) as f64 * 0.25).collect();
    rows.add_block(0..N, Arc::new(b));
    let c = vec![0.0; N * k];
    (row_major, col_major, rows, c)
}

fn bench_kernels(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("local_spmm_kernels");
    for k in [8usize, 32, 128] {
        let (row_major, col_major, rows, c) = make_inputs(k);
        group.throughput(Throughput::Elements((row_major.len() * k) as u64));
        group.bench_with_input(BenchmarkId::new("sync_row_panel", k), &k, |bench, &k| {
            bench.iter_batched(
                || c.clone(),
                |mut c| sync_panel_kernel(black_box(&row_major), &rows, &mut c, k),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("async_column_major", k), &k, |bench, &k| {
            bench.iter_batched(
                || c.clone(),
                |mut c| async_stripe_kernel(black_box(&col_major), &rows, &mut c, k),
                criterion::BatchSize::LargeInput,
            );
        });
        // The same column-major kernel over a FetchedRows source — the
        // per-nonzero lookup path Two-Face's async lane actually runs.
        let fetched = FetchedRows::new(&[(0, N)], 0, vec![0.5; N * k], k);
        group.bench_with_input(BenchmarkId::new("async_fetched_rows", k), &k, |bench, &k| {
            bench.iter_batched(
                || c.clone(),
                |mut c| async_stripe_kernel(black_box(&col_major), &fetched, &mut c, k),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_row_source(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("row_source_lookup");
    let k = 32;
    let mut rows = BlockRows::new(k);
    // 32 blocks, as a 32-node layout would register.
    for block in 0..32 {
        let cols = block * 128..(block + 1) * 128;
        rows.add_block(cols, Arc::new(vec![1.0; 128 * k]));
    }
    group.bench_function("block_rows_row", |bench| {
        let mut i = 0usize;
        bench.iter(|| {
            i = (i.wrapping_mul(2654435761)).wrapping_add(1) % (32 * 128);
            black_box(rows.row(i));
        });
    });
    // Ascending sweep through a per-caller cursor: the access pattern of the
    // column-major async kernel's hot loop.
    group.bench_function("block_rows_row_ascending", |bench| {
        let mut i = 0usize;
        let mut cursor = RowCursor::default();
        bench.iter(|| {
            i = (i + 1) % (32 * 128);
            black_box(rows.row_with(&mut cursor, i));
        });
    });
    // FetchedRows over 256 coalesced runs of 4 rows each (gap 4), swept in
    // ascending column order as the async kernel does.
    let runs: Vec<(usize, usize)> = (0..256).map(|r| (r * 8, 4)).collect();
    let fetched = FetchedRows::new(&runs, 1000, vec![0.5; 256 * 4 * k], k);
    let cols: Vec<usize> =
        runs.iter().flat_map(|&(first, n)| (first..first + n).map(|r| 1000 + r)).collect();
    group.bench_function("fetched_rows_row_ascending", |bench| {
        let mut i = 0usize;
        let mut cursor = RowCursor::default();
        bench.iter(|| {
            i = (i + 1) % cols.len();
            black_box(fetched.row_with(&mut cursor, cols[i]));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_row_source);
criterion_main!(benches);
