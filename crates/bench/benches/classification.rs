//! Criterion benchmarks for the preprocessing pipeline: per-node profiling,
//! stripe classification, and full plan construction.
//!
//! Preprocessing cost is the subject of Table 6; these benchmarks expose
//! where it goes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use twoface_matrix::gen::{rmat, RmatConfig};
use twoface_partition::{
    classify_node, ModelCoefficients, NodeProfile, OneDimLayout, PartitionPlan, PlanOptions,
};

fn bench_preprocessing(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("preprocessing");
    group.sample_size(20);
    for scale in [12u32, 14] {
        let a = rmat(&RmatConfig { scale, edge_factor: 8, ..Default::default() }, 3);
        let n = a.rows();
        let layout = OneDimLayout::new(n, n, 8, n / 256);
        let coeffs = ModelCoefficients::table3();
        group.throughput(Throughput::Elements(a.nnz() as u64));

        group.bench_with_input(BenchmarkId::new("profile_node", n), &a, |bench, a| {
            bench.iter(|| NodeProfile::build(black_box(a), &layout, 0));
        });

        let profile = NodeProfile::build(&a, &layout, 0);
        group.bench_with_input(BenchmarkId::new("classify_node", n), &profile, |bench, p| {
            bench.iter(|| classify_node(black_box(p), &layout, &coeffs, 128));
        });

        group.bench_with_input(BenchmarkId::new("full_plan", n), &a, |bench, a| {
            bench.iter(|| {
                PartitionPlan::build(
                    black_box(a),
                    layout.clone(),
                    &coeffs,
                    128,
                    PlanOptions::default(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
