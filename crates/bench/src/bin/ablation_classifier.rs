//! Ablation: the paper's greedy classifier vs the fan-out-aware variant it
//! sketches as future work (§4.2: "classify a stripe as synchronous when its
//! corresponding dense stripe is needed by many nodes").
//!
//! The greedy model prices every synchronous stripe identically, so on
//! matrices whose dense stripes are needed by most nodes (twitter,
//! friendster) it keeps expensive large multicasts synchronous — §7.1/§7.2
//! blame exactly this for Two-Face's losses. The fan-out-aware classifier
//! inflates the modeled sync cost by the multicast penalty and should narrow
//! those losses while leaving the winning matrices untouched.

use serde::Serialize;
use std::sync::Arc;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_K, DEFAULT_P};
use twoface_core::{prepare_plan_with_classifier, run_algorithm, Algorithm, RunOptions};
use twoface_matrix::gen::SuiteMatrix;
use twoface_partition::{ClassifierKind, ModelCoefficients};

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    ds2_seconds: f64,
    greedy_seconds: f64,
    fanout_aware_seconds: f64,
    greedy_speedup_vs_ds2: f64,
    fanout_aware_speedup_vs_ds2: f64,
    fanout_mean_recipients: Option<f64>,
    greedy_mean_recipients: Option<f64>,
}

fn main() {
    banner(
        "Ablation: greedy vs fan-out-aware stripe classifier (§4.2 future work)",
        format!("Two-Face at K = {DEFAULT_K}, p = {DEFAULT_P}; speedups vs DS2.").as_str(),
    );
    let cost = default_cost();
    let coeffs = ModelCoefficients::from(&cost);
    let options = RunOptions { compute_values: false, ..Default::default() };
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    println!(
        "{:<12} {:>10} {:>10} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "matrix", "DS2 (s)", "greedy", "aware", "greedy x", "aware x", "g-recips", "a-recips"
    );
    for m in SuiteMatrix::ALL {
        let problem = cache.problem(m, DEFAULT_K, DEFAULT_P).expect("suite problems are valid");
        let ds2 =
            run_algorithm(Algorithm::DenseShifting { replication: 2 }, &problem, &cost, &options)
                .expect("DS2 fits at K = 128");
        let run = |kind: ClassifierKind| {
            let plan = Arc::new(prepare_plan_with_classifier(&problem, &coeffs, &cost, kind));
            run_algorithm(
                Algorithm::TwoFace,
                &problem,
                &cost,
                &RunOptions { plan: Some(plan), ..options.clone() },
            )
            .expect("Two-Face fits")
        };
        let greedy = run(ClassifierKind::Greedy);
        let aware = run(ClassifierKind::FanoutAware { penalty: cost.multicast_fanout });
        let row = Row {
            matrix: m.short_name(),
            ds2_seconds: ds2.seconds,
            greedy_seconds: greedy.seconds,
            fanout_aware_seconds: aware.seconds,
            greedy_speedup_vs_ds2: ds2.seconds / greedy.seconds,
            fanout_aware_speedup_vs_ds2: ds2.seconds / aware.seconds,
            greedy_mean_recipients: greedy.mean_multicast_recipients,
            fanout_mean_recipients: aware.mean_multicast_recipients,
        };
        println!(
            "{:<12} {:>10.5} {:>10.5} {:>10.5} | {:>9.2} {:>9.2} | {:>9} {:>9}",
            row.matrix,
            row.ds2_seconds,
            row.greedy_seconds,
            row.fanout_aware_seconds,
            row.greedy_speedup_vs_ds2,
            row.fanout_aware_speedup_vs_ds2,
            row.greedy_mean_recipients.map_or("-".into(), |r| format!("{r:.1}")),
            row.fanout_mean_recipients.map_or("-".into(), |r| format!("{r:.1}")),
        );
        rows.push(row);
    }
    let g: Vec<f64> = rows.iter().map(|r| r.greedy_speedup_vs_ds2).collect();
    let a: Vec<f64> = rows.iter().map(|r| r.fanout_aware_speedup_vs_ds2).collect();
    println!(
        "\ngeo-mean speedup vs DS2: greedy {:.2}x, fan-out-aware {:.2}x",
        twoface_bench::geo_mean(&g).unwrap(),
        twoface_bench::geo_mean(&a).unwrap()
    );
    write_json("ablation_classifier", &rows);
}
