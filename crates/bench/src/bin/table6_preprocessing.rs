//! Table 6: the overhead of Two-Face preprocessing, normalized to one SpMM.
//!
//! Reproduces both columns: `t_norm_IO` (preprocessing including reading the
//! matrix from textual Matrix Market and writing the bespoke binary format)
//! and `t_norm` (classification + structure building only). Preprocessing is
//! single-threaded wall-clock work proportional to nnz, and one SpMM is
//! simulated seconds; both scale linearly with matrix size, so the ratio is
//! directly comparable to the paper's (up to single-core speed differences).

use serde::Serialize;
use std::time::Instant;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_K, DEFAULT_P};
use twoface_core::{
    prepare_plan, run_algorithm, Algorithm, RankMatrices, RunOptions, TwoFaceConfig,
};
use twoface_matrix::gen::SuiteMatrix;
use twoface_matrix::io::{read_market, write_binary, write_market};
use twoface_matrix::{CooMatrix, Triplet};
use twoface_partition::ModelCoefficients;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    prep_wall_seconds_with_io: f64,
    prep_wall_seconds: f64,
    spmm_seconds: f64,
    t_norm_io_wall: f64,
    t_norm_wall: f64,
    /// SpMM operations needed before Two-Face (including preprocessing)
    /// beats DS2 (the paper reports an average of 15 at K = 128).
    amortization_wall_ops: Option<f64>,
}

fn main() {
    banner(
        "Table 6: preprocessing overhead normalized to one SpMM (K = 128)",
        format!("p = {DEFAULT_P}; t_norm_IO includes MatrixMarket read + binary write.").as_str(),
    );
    let cost = default_cost();
    let coefficients = ModelCoefficients::from(&cost);
    let options = RunOptions { compute_values: false, ..Default::default() };
    let config = TwoFaceConfig::default();
    let mut cache = SuiteCache::new();
    let tmp = std::env::temp_dir().join("twoface-table6");
    std::fs::create_dir_all(&tmp).expect("can create temp dir");

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10} {:>8} {:>10}",
        "matrix", "prep+IO (s)", "prep (s)", "SpMM (s)", "t_norm_IO", "t_norm", "amortize"
    );
    let mut rows = Vec::new();
    for m in SuiteMatrix::ALL {
        let problem = cache.problem(m, DEFAULT_K, DEFAULT_P).expect("suite problems are valid");
        // Stage the textual input, as SuiteSparse distributes it (untimed).
        let mtx_path = tmp.join(format!("{}.mtx", m.short_name()));
        {
            let file = std::fs::File::create(&mtx_path).expect("can create mtx");
            write_market(std::io::BufWriter::new(file), &problem.a).expect("can write mtx");
        }

        // Preprocessing including I/O: read text, classify, build the two
        // Figure-6 matrices, write them in the bespoke binary format.
        let start = Instant::now();
        let a =
            read_market(std::fs::File::open(&mtx_path).expect("mtx exists")).expect("mtx parses");
        let plan = prepare_plan(&problem, &coefficients, &cost);
        let per_rank: Vec<RankMatrices> = (0..DEFAULT_P)
            .map(|rank| RankMatrices::build(&a, &plan, rank, config.row_panel_height))
            .collect();
        let offsets: Vec<usize> =
            (0..DEFAULT_P).map(|rank| plan.layout().row_range(rank).start).collect();
        write_structures(&tmp, m.short_name(), &a, &per_rank, &offsets);
        let prep_io = start.elapsed().as_secs_f64();

        // Preprocessing without I/O: classification + structure building on
        // the in-memory matrix.
        let start = Instant::now();
        let plan = prepare_plan(&problem, &coefficients, &cost);
        let _per_rank: Vec<RankMatrices> = (0..DEFAULT_P)
            .map(|rank| RankMatrices::build(&problem.a, &plan, rank, config.row_panel_height))
            .collect();
        let prep = start.elapsed().as_secs_f64();
        drop(plan);

        let tf = run_algorithm(Algorithm::TwoFace, &problem, &cost, &options)
            .expect("Two-Face fits on the whole suite");
        let ds2 =
            run_algorithm(Algorithm::DenseShifting { replication: 2 }, &problem, &cost, &options)
                .expect("DS2 fits at K = 128");
        let saved_per_op = ds2.seconds - tf.seconds;
        let amortization = (saved_per_op > 0.0).then(|| prep / saved_per_op);

        let row = Row {
            matrix: m.short_name(),
            prep_wall_seconds_with_io: prep_io,
            prep_wall_seconds: prep,
            spmm_seconds: tf.seconds,
            t_norm_io_wall: prep_io / tf.seconds,
            t_norm_wall: prep / tf.seconds,
            amortization_wall_ops: amortization,
        };
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.5} {:>10.1} {:>8.1} {:>10}",
            row.matrix,
            row.prep_wall_seconds_with_io,
            row.prep_wall_seconds,
            row.spmm_seconds,
            row.t_norm_io_wall,
            row.t_norm_wall,
            row.amortization_wall_ops.map_or("never".to_string(), |a| format!("{a:.0} ops")),
        );
        rows.push(row);
        std::fs::remove_file(&mtx_path).ok();
    }
    let avg_io: f64 = rows.iter().map(|r| r.t_norm_io_wall).sum::<f64>() / rows.len() as f64;
    let avg: f64 = rows.iter().map(|r| r.t_norm_wall).sum::<f64>() / rows.len() as f64;
    println!("\nAverage t_norm_IO = {avg_io:.1} (paper: 134.35), t_norm = {avg:.1} (paper: 24.27)");
    write_json("table6_preprocessing", &rows);
}

/// Writes the synchronous/local-input and asynchronous matrices of every
/// rank in the bespoke binary format, as the paper's preprocessing does.
fn write_structures(
    dir: &std::path::Path,
    name: &str,
    a: &CooMatrix,
    per_rank: &[RankMatrices],
    offsets: &[usize],
) {
    let mut sync_triplets: Vec<Triplet> = Vec::new();
    let mut async_triplets: Vec<Triplet> = Vec::new();
    for (rank, m) in per_rank.iter().enumerate() {
        // Rebase local rows back to global for a single container file.
        let offset = offsets[rank];
        sync_triplets.extend(
            m.sync_local
                .entries()
                .iter()
                .map(|t| t.widen())
                .map(|t| Triplet::new(t.row + offset, t.col, t.val)),
        );
        for stripe in m.asynchronous.stripes() {
            async_triplets.extend(
                stripe
                    .entries
                    .iter()
                    .map(|t| t.widen())
                    .map(|t| Triplet::new(t.row + offset, t.col, t.val)),
            );
        }
    }
    for (suffix, triplets) in [("sync", sync_triplets), ("async", async_triplets)] {
        let matrix = CooMatrix::from_triplets(a.rows(), a.cols(), triplets)
            .expect("rebased coordinates stay in bounds");
        let path = dir.join(format!("{name}.{suffix}.bin"));
        let file = std::fs::File::create(&path).expect("can create binary");
        write_binary(std::io::BufWriter::new(file), &matrix).expect("can write binary");
        std::fs::remove_file(&path).ok();
    }
}
