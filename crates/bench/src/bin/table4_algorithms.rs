//! Table 4: the SpMM algorithms under comparison and their MPI transfer
//! operations.

use serde::Serialize;
use twoface_bench::{banner, write_json};
use twoface_core::Algorithm;

#[derive(Serialize)]
struct Row {
    name: String,
    mpi_operations: &'static str,
    uses_plan: bool,
}

fn main() {
    banner(
        "Table 4: SpMM algorithms being compared",
        "All algorithms use 1D partitioning; they differ in how B moves.",
    );
    let algorithms = [
        Algorithm::DenseShifting { replication: 2 },
        Algorithm::OneFiveD { replication: 4 },
        Algorithm::Summa,
        Algorithm::Slicing,
        Algorithm::Allgather,
        Algorithm::AsyncCoarse,
        Algorithm::TwoFace,
        Algorithm::AsyncFine,
        Algorithm::Auto,
    ];
    println!("{:<24} {:<28} {:>10}", "Algorithm", "MPI Transfer Operations", "Uses plan");
    let mut out = Vec::new();
    for a in algorithms {
        let row =
            Row { name: a.name(), mpi_operations: a.mpi_operations(), uses_plan: a.uses_plan() };
        println!("{:<24} {:<28} {:>10}", row.name, row.mpi_operations, row.uses_plan);
        out.push(row);
    }
    write_json("table4_algorithms", &out);
}
