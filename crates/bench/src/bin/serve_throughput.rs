//! Serving throughput: what the persistent session buys over one-shot runs.
//!
//! Three experiments on one warm [`SpmmService`] session:
//!
//! 1. **Cache amortization** — per matrix: a cold request (plan-cache miss,
//!    preprocessing built and wall-timed) followed by a warm request (hit,
//!    preprocessing skipped). Simulated seconds are identical by
//!    construction; the delta is host wall time.
//! 2. **Batched vs solo scheduling** — the same request stream drained
//!    once (compatible requests fused) and one-at-a-time. Batching runs
//!    fewer, wider executions, which amortizes per-run fixed costs in
//!    *simulated* time — a delta the single-CPU host cannot fake.
//! 3. **Chaos resilience** — the stream replayed under a light fault plan:
//!    every request is still served, with retries/fallbacks counted.
//!
//! Writes `results/serve_throughput.json`.

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use twoface_bench::{banner, write_json};
use twoface_matrix::gen::{erdos_renyi, rmat, webcrawl, RmatConfig, WebcrawlConfig};
use twoface_matrix::{CooMatrix, DenseMatrix};
use twoface_net::{CostModel, FaultPlan};
use twoface_serve::{CacheStats, ServeConfig, SpmmRequest, SpmmService};

const P: usize = 8;
const K: usize = 16;
const REQUESTS_PER_MATRIX: usize = 8;

fn suite() -> Vec<(&'static str, usize, Arc<CooMatrix>)> {
    vec![
        (
            "webcrawl-8k",
            64,
            Arc::new(webcrawl(
                &WebcrawlConfig { n: 8192, hosts: 128, per_row: 10, ..Default::default() },
                5,
            )),
        ),
        (
            "rmat-s12",
            64,
            Arc::new(rmat(&RmatConfig { scale: 12, edge_factor: 12, ..Default::default() }, 9)),
        ),
        ("uniform-4k", 32, Arc::new(erdos_renyi(4096, 4096, 60_000, 3))),
    ]
}

fn dense(rows: usize, k: usize, seed: u64) -> Arc<DenseMatrix> {
    Arc::new(DenseMatrix::from_fn(rows, k, |i, j| {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((j as u64).wrapping_mul(seed.wrapping_mul(2) | 1));
        let h = (h ^ (h >> 31)).wrapping_mul(0xD6E8FEB86659FD93);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[derive(Serialize)]
struct CacheRow {
    matrix: String,
    cold_prep_wall_ms: f64,
    warm_prep_wall_ms: f64,
    cold_wall_ms: f64,
    warm_wall_ms: f64,
    sim_seconds_identical: bool,
}

#[derive(Serialize)]
struct StreamSummary {
    requests: usize,
    executions: u64,
    wall_seconds: f64,
    requests_per_second_wall: f64,
    sim_makespan_seconds: f64,
    sim_latency_p50_ms: f64,
    sim_latency_p99_ms: f64,
}

#[derive(Serialize)]
struct ChaosSummary {
    requests: usize,
    served: usize,
    retries: u64,
    fallbacks: u64,
    faults_seeded: bool,
}

#[derive(Serialize)]
struct Results {
    description: String,
    host_note: String,
    p: usize,
    k: usize,
    cache: Vec<CacheRow>,
    batched: StreamSummary,
    solo: StreamSummary,
    sim_makespan_batched_over_solo: f64,
    chaos: ChaosSummary,
    cache_stats: CacheStats,
    timeline_events: usize,
}

/// Runs a request stream through a fresh warm service. `batch` controls
/// whether the stream drains once (fused) or request-by-request (solo).
fn run_stream(
    matrices: &[(&'static str, usize, Arc<CooMatrix>)],
    fault_plan: Option<FaultPlan>,
    batch: bool,
) -> (StreamSummary, SpmmService, usize) {
    let mut config = ServeConfig::new(P, CostModel::delta_scaled());
    config.fault_plan = fault_plan;
    let mut service = SpmmService::new(config);
    let handles: Vec<_> = matrices
        .iter()
        .map(|(_, stripe, a)| service.register_matrix(Arc::clone(a), *stripe).unwrap())
        .collect();

    let wall = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut served = 0usize;
    let mut requests = 0usize;
    if batch {
        for (i, (handle, (_, _, a))) in handles.iter().zip(matrices).enumerate() {
            for r in 0..REQUESTS_PER_MATRIX {
                let b = dense(a.cols(), K, (i * REQUESTS_PER_MATRIX + r) as u64);
                service.submit(SpmmRequest::new(*handle, b)).unwrap();
                requests += 1;
            }
        }
        for response in service.drain() {
            latencies.push(response.sim_seconds);
            served += usize::from(response.output.is_ok());
        }
    } else {
        for (i, (handle, (_, _, a))) in handles.iter().zip(matrices).enumerate() {
            for r in 0..REQUESTS_PER_MATRIX {
                let b = dense(a.cols(), K, (i * REQUESTS_PER_MATRIX + r) as u64);
                let response = service.run_one(SpmmRequest::new(*handle, b)).unwrap();
                latencies.push(response.sim_seconds);
                served += usize::from(response.output.is_ok());
                requests += 1;
            }
        }
    }
    let wall_seconds = wall.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let summary = StreamSummary {
        requests,
        executions: service.metrics().counter("serve.batches"),
        wall_seconds,
        requests_per_second_wall: requests as f64 / wall_seconds,
        sim_makespan_seconds: service.sim_seconds(),
        sim_latency_p50_ms: percentile(&latencies, 0.50) * 1e3,
        sim_latency_p99_ms: percentile(&latencies, 0.99) * 1e3,
    };
    (summary, service, served)
}

fn main() {
    banner(
        "serve_throughput: persistent-session serving",
        &format!("{P} ranks, K = {K}, {REQUESTS_PER_MATRIX} requests per matrix"),
    );
    let matrices = suite();

    // ---- 1. Cache amortization: cold vs warm per matrix. -----------------
    let mut config = ServeConfig::new(P, CostModel::delta_scaled());
    config.max_k_per_batch = K; // one request per execution here
    let mut service = SpmmService::new(config);
    let mut cache_rows = Vec::new();
    println!("\ncold vs warm (plan cache):");
    println!(
        "  {:<14} {:>14} {:>14} {:>12} {:>12}",
        "matrix", "cold prep ms", "warm prep ms", "cold wall", "warm wall"
    );
    for (name, stripe, a) in &matrices {
        let handle = service.register_matrix(Arc::clone(a), *stripe).unwrap();
        let b = dense(a.cols(), K, 1);

        let wall = Instant::now();
        let cold = service.run_one(SpmmRequest::new(handle, Arc::clone(&b))).unwrap();
        let cold_wall = wall.elapsed().as_secs_f64();

        let wall = Instant::now();
        let warm = service.run_one(SpmmRequest::new(handle, b)).unwrap();
        let warm_wall = wall.elapsed().as_secs_f64();

        assert_eq!(cold.cache_hit, Some(false));
        assert_eq!(warm.cache_hit, Some(true));
        let row = CacheRow {
            matrix: name.to_string(),
            cold_prep_wall_ms: cold.prep_wall_nanos as f64 / 1e6,
            warm_prep_wall_ms: warm.prep_wall_nanos as f64 / 1e6,
            cold_wall_ms: cold_wall * 1e3,
            warm_wall_ms: warm_wall * 1e3,
            sim_seconds_identical: cold.sim_seconds == warm.sim_seconds,
        };
        println!(
            "  {:<14} {:>14.2} {:>14.2} {:>10.1}ms {:>10.1}ms",
            row.matrix,
            row.cold_prep_wall_ms,
            row.warm_prep_wall_ms,
            row.cold_wall_ms,
            row.warm_wall_ms
        );
        assert!(row.sim_seconds_identical, "the cache must not change simulated time");
        cache_rows.push(row);
    }

    // ---- 2. Batched vs solo scheduling. ----------------------------------
    let (batched, batched_service, _) = run_stream(&matrices, None, true);
    let (solo, _, _) = run_stream(&matrices, None, false);
    let makespan_ratio = batched.sim_makespan_seconds / solo.sim_makespan_seconds;
    println!("\nbatched vs solo ({} requests):", batched.requests);
    for (label, s) in [("batched", &batched), ("solo", &solo)] {
        println!(
            "  {label:<8} {} executions; {:.2} req/s wall; sim makespan {:.3}ms; \
             sim latency p50 {:.3}ms p99 {:.3}ms",
            s.executions,
            s.requests_per_second_wall,
            s.sim_makespan_seconds * 1e3,
            s.sim_latency_p50_ms,
            s.sim_latency_p99_ms
        );
    }
    println!("  simulated makespan, batched / solo: {makespan_ratio:.3}");

    // ---- 3. Chaos resilience. --------------------------------------------
    let (_, chaos_service, served) = run_stream(&matrices, Some(FaultPlan::light(77)), true);
    let chaos = ChaosSummary {
        requests: matrices.len() * REQUESTS_PER_MATRIX,
        served,
        retries: chaos_service.metrics().counter("serve.retries"),
        fallbacks: chaos_service.metrics().counter("serve.fallbacks"),
        faults_seeded: true,
    };
    println!(
        "\nchaos (light faults): {}/{} served, {} scheduler retries, {} fallbacks",
        chaos.served, chaos.requests, chaos.retries, chaos.fallbacks
    );
    assert_eq!(chaos.served, chaos.requests, "light faults must be absorbed");

    let results = Results {
        description: "Persistent SpMM serving: plan-cache amortization (cold vs warm), \
                      batched vs solo scheduling, and fault resilience on a warm session"
            .into(),
        host_note: "Wall-clock numbers come from a single-CPU container; the load-bearing \
                    deltas are the simulated-time ratio (host-independent) and the warm-path \
                    preprocessing wall time dropping to zero."
            .into(),
        p: P,
        k: K,
        cache: cache_rows,
        batched,
        solo,
        sim_makespan_batched_over_solo: makespan_ratio,
        chaos,
        cache_stats: batched_service.cache_stats(),
        timeline_events: batched_service.timeline().len(),
    };
    write_json("serve_throughput", &results);
}
