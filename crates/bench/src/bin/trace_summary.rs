//! Event-stream ingestion and cross-checking for the observability layer.
//!
//! Two modes:
//!
//! * **No arguments** — run a chaos-seeded, fully traced Two-Face execution,
//!   write the event stream to `results/trace_summary.events.jsonl` and a
//!   Perfetto-loadable Chrome trace to `results/trace_summary.chrome.json`,
//!   then regenerate the Figure-10 breakdown and the §7.2 multicast profile
//!   *from the events alone* and cross-check both against the aggregate
//!   [`ExecutionReport`] counters. Any disagreement beyond float rounding
//!   aborts with a nonzero exit.
//! * **One path argument** — parse and validate an existing `.jsonl` event
//!   stream (the schema check CI runs), re-derive the same summaries from
//!   it, and exit nonzero if the stream is malformed or internally
//!   inconsistent.
//!
//! Either way the run ends with the top-N longest operations on the slowest
//! rank — the simulated critical path a Perfetto timeline would show.

use std::process::ExitCode;
use twoface_bench::{banner, results_dir};
use twoface_core::{run_algorithm, Algorithm, Breakdown, Problem, RunOptions};
use twoface_matrix::gen::{webcrawl, WebcrawlConfig};
use twoface_net::{
    export, seconds_by_class, FaultPlan, Histogram, Observability, OpEvent, OpKind, PhaseClass,
    RankTrace,
};

/// Operations printed from the slowest rank's timeline.
const TOP_N: usize = 10;

/// Relative tolerance for event-vs-aggregate comparisons. The two systems
/// round independently (one addition vs two per operation), so exact
/// equality is not guaranteed; anything beyond this means a dropped or
/// double-counted operation.
const REL_TOLERANCE: f64 = 1e-9;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next() {
        Some(path) => validate_file(&path),
        None => run_traced_example(),
    }
}

/// Validation mode: parse a `.jsonl` stream and re-derive its summaries.
fn validate_file(path: &str) -> ExitCode {
    banner("trace_summary: validate an event stream", path);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match export::parse_events_jsonl(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: malformed event stream: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "parsed {} ranks, {} events",
        parsed.events_by_rank.len(),
        parsed.events_by_rank.iter().map(Vec::len).sum::<usize>()
    );
    if let Err(msg) = check_events_against_traces(&parsed.events_by_rank, &parsed.traces) {
        eprintln!("error: {msg}");
        return ExitCode::FAILURE;
    }
    println!("event stream is consistent with its per-rank summaries");
    print_summaries(&parsed.events_by_rank);
    ExitCode::SUCCESS
}

/// Example mode: a chaos-seeded traced run, exported and cross-checked.
fn run_traced_example() -> ExitCode {
    banner(
        "trace_summary: traced chaos run",
        "Two-Face, p = 8, K = 32, webcrawl 4096, heavy fault plan (seed 41)",
    );
    let a = webcrawl(&WebcrawlConfig { n: 4096, hosts: 64, per_row: 8, ..Default::default() }, 17);
    let problem = Problem::with_generated_b(std::sync::Arc::new(a), 32, 8, 64)
        .expect("example problem is valid");
    let options = RunOptions {
        compute_values: false,
        fault_plan: Some(FaultPlan::heavy(41)),
        observability: Observability::full(),
        ..Default::default()
    };
    let cost = twoface_bench::default_cost();
    let report = run_algorithm(Algorithm::TwoFace, &problem, &cost, &options)
        .expect("the heavy plan's retry budget absorbs its faults");

    // Export both formats.
    let dir = results_dir();
    let jsonl = export::events_jsonl(&report.rank_events, &report.rank_traces, false);
    let chrome = export::chrome_trace_json(&report.rank_events, false);
    let jsonl_path = dir.join("trace_summary.events.jsonl");
    let chrome_path = dir.join("trace_summary.chrome.json");
    std::fs::write(&jsonl_path, &jsonl).expect("can write results");
    std::fs::write(&chrome_path, &chrome).expect("can write results");
    println!("events  -> {}", jsonl_path.display());
    println!("perfetto-> {}", chrome_path.display());

    // The exported stream must round-trip.
    let parsed = match export::parse_events_jsonl(&jsonl) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: freshly exported stream failed to parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.events_by_rank != report.rank_events {
        eprintln!("error: JSONL round-trip changed the event stream");
        return ExitCode::FAILURE;
    }

    // Cross-check events against the independent aggregate accounting.
    if let Err(msg) = check_events_against_traces(&report.rank_events, &report.rank_traces) {
        eprintln!("error: {msg}");
        return ExitCode::FAILURE;
    }
    let event_breakdown = Breakdown::from_events(&report.rank_events[report.critical_rank]);
    let total_diff = (event_breakdown.total() - report.critical_breakdown.total()).abs();
    println!(
        "critical rank {}: event-derived breakdown matches the aggregate within {:.1e}s",
        report.critical_rank, total_diff
    );
    let event_recipients = multicast_recipients(&report.rank_events);
    match (event_recipients, report.mean_multicast_recipients) {
        (Some(e), Some(a)) if (e - a).abs() <= REL_TOLERANCE * a.max(1.0) => {
            println!("§7.2 profile from events: {e:.2} mean recipients (aggregate agrees)");
        }
        (e, a) => {
            eprintln!("error: multicast profile mismatch: events {e:?} vs aggregate {a:?}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "{} faults injected; {:.2e}s of recovery backoff on the critical rank",
        report.faults_injected, report.critical_breakdown.recovery
    );

    print_summaries(&report.rank_events);
    ExitCode::SUCCESS
}

/// Checks the coverage invariant: per-class event durations must sum to the
/// aggregate trace's per-class seconds, for every rank.
fn check_events_against_traces(
    events_by_rank: &[Vec<OpEvent>],
    traces: &[RankTrace],
) -> Result<(), String> {
    for (rank, (events, trace)) in events_by_rank.iter().zip(traces).enumerate() {
        let from_events = seconds_by_class(events);
        let from_trace = trace.class_seconds();
        for (class, (e, t)) in PhaseClass::ALL.iter().zip(from_events.iter().zip(&from_trace)) {
            if (e - t).abs() > REL_TOLERANCE * t.abs().max(1e-30) {
                return Err(format!(
                    "rank {rank} {}: events account for {e}s but the trace recorded {t}s",
                    class.label()
                ));
            }
        }
    }
    Ok(())
}

/// Per-op-kind simulated-duration quantiles from the mergeable log₂-bucket
/// sketch — the same [`Histogram::quantile`] read the profile artifacts use.
fn print_duration_quantiles(events_by_rank: &[Vec<OpEvent>]) {
    let mut sketches: Vec<(OpKind, Histogram)> = Vec::new();
    for e in events_by_rank.iter().flatten() {
        let ns = (e.duration_seconds() * 1e9).round() as u64;
        match sketches.iter_mut().find(|(k, _)| *k == e.kind) {
            Some((_, h)) => h.observe(ns),
            None => {
                let mut h = Histogram::default();
                h.observe(ns);
                sketches.push((e.kind, h));
            }
        }
    }
    sketches.sort_by_key(|(k, _)| k.index());
    println!("\n===== Simulated duration quantiles per op kind (ns) =====");
    println!("{:<14}{:>10}{:>14}{:>14}{:>14}", "op", "events", "p50", "p95", "p99");
    for (kind, h) in &sketches {
        let q = |at: f64| h.quantile(at).unwrap_or(0.0);
        println!(
            "{:<14}{:>10}{:>14.0}{:>14.0}{:>14.0}",
            kind.label(),
            h.count(),
            q(0.50),
            q(0.95),
            q(0.99)
        );
    }
}

/// Mean recipients across every root-side multicast event, if any.
fn multicast_recipients(events_by_rank: &[Vec<OpEvent>]) -> Option<f64> {
    let counts: Vec<usize> = events_by_rank
        .iter()
        .flatten()
        .filter(|e| e.kind == OpKind::Multicast && e.initiator)
        .map(|e| e.peers.len())
        .collect();
    if counts.is_empty() {
        None
    } else {
        Some(counts.iter().sum::<usize>() as f64 / counts.len() as f64)
    }
}

/// Prints the event-derived Figure-10 breakdown per rank plus the top-N
/// longest operations on the slowest rank.
fn print_summaries(events_by_rank: &[Vec<OpEvent>]) {
    println!("\n===== Figure-10 breakdown, derived from events (seconds) =====");
    let header: String = PhaseClass::ALL.iter().map(|c| format!("{:>12}", c.label())).collect();
    println!("{:<6}{header}{:>12}", "rank", "finish");
    let mut slowest = 0usize;
    let mut slowest_finish = f64::NEG_INFINITY;
    for (rank, events) in events_by_rank.iter().enumerate() {
        let by_class = seconds_by_class(events);
        let finish = events.iter().map(|e| e.end_seconds).fold(0.0, f64::max);
        if finish > slowest_finish {
            slowest_finish = finish;
            slowest = rank;
        }
        let cells: String = by_class.iter().map(|s| format!("{s:>12.6}")).collect();
        println!("{rank:<6}{cells}{finish:>12.6}");
    }

    print_duration_quantiles(events_by_rank);

    println!("\n===== Top {TOP_N} operations on the slowest rank ({slowest}) =====");
    println!(
        "{:>10} {:<12} {:<10} {:>12} {:>12} {:>10}",
        "seq", "op", "class", "start (s)", "dur (s)", "elements"
    );
    let mut ops: Vec<&OpEvent> = events_by_rank[slowest].iter().collect();
    ops.sort_by(|a, b| {
        b.duration_seconds()
            .partial_cmp(&a.duration_seconds())
            .expect("durations are finite")
            .then(a.seq.cmp(&b.seq))
    });
    for e in ops.iter().take(TOP_N) {
        println!(
            "{:>10} {:<12} {:<10} {:>12.6} {:>12.3e} {:>10}",
            e.seq,
            e.kind.label(),
            e.class.label(),
            e.start_seconds,
            e.duration_seconds(),
            e.elements
        );
    }
}
