//! Multi-tenant serving under load: the front-end's scheduling quality
//! across tenants × deadlines × fault severities.
//!
//! A deterministic scripted workload drives the inline [`Frontend`] (the
//! replayable mode): a best-effort training tenant with wide panels, an
//! interactive tenant under a tight simulated-latency SLO, and a bursty
//! tenant that overruns its queue quota. The script replays once per fault
//! severity (none, light). Reported per scenario:
//!
//! * admission outcomes (admitted / typed rejections) and the close-reason
//!   mix (K-budget, deadline pressure, aged, flush) — gated, deterministic;
//! * simulated makespan, per-nonzero throughput on the simulated clock, and
//!   per-tenant simulated latency quantiles — gated;
//! * deadline hit rates per tenant — gated;
//! * wall time and queue-depth quantiles — informational (host noise and
//!   sketch vocabulary).
//!
//! Every admitted response is verified bit-identical to a solo run of the
//! same request on an identically configured service, and the whole
//! scripted schedule is worker-count independent — the bit-identity
//! contract extended to the front-end.
//!
//! Writes `results/frontend_serving.json`.

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use twoface_bench::{banner, write_json};
use twoface_frontend::{
    CloseReason, Frontend, FrontendConfig, FrontendError, FrontendRequest, FrontendResponse,
    TenantQuota,
};
use twoface_matrix::gen::{erdos_renyi, rmat, RmatConfig};
use twoface_matrix::{CooMatrix, DenseMatrix};
use twoface_net::{CostModel, FaultPlan};
use twoface_serve::{MatrixHandle, ServeConfig, SpmmRequest, SpmmService};

const P: usize = 8;
const MAX_K_PER_BATCH: usize = 64;
const ROUNDS: usize = 6;
const TRAIN_K: usize = 16;
const QUERY_K: usize = 8;
/// The interactive tenant's SLO on the simulated clock.
const QUERY_SLO_SIM_SECONDS: f64 = 0.000_1;

fn suite() -> Vec<(&'static str, usize, Arc<CooMatrix>)> {
    vec![
        ("uniform-4k", 32, Arc::new(erdos_renyi(4096, 4096, 60_000, 3))),
        (
            "rmat-s11",
            64,
            Arc::new(rmat(&RmatConfig { scale: 11, edge_factor: 10, ..Default::default() }, 9)),
        ),
    ]
}

fn dense(rows: usize, k: usize, seed: u64) -> Arc<DenseMatrix> {
    Arc::new(DenseMatrix::from_fn(rows, k, |i, j| {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((j as u64).wrapping_mul(seed.wrapping_mul(2) | 1));
        let h = (h ^ (h >> 31)).wrapping_mul(0xD6E8FEB86659FD93);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[derive(Serialize)]
struct TenantRow {
    tenant: String,
    submitted: u64,
    completed: u64,
    rejected: u64,
    deadline_hits: u64,
    deadline_misses: u64,
    sim_latency_p50_ms: f64,
    sim_latency_p95_ms: f64,
}

#[derive(Serialize)]
struct ScenarioResult {
    fault: String,
    requests_offered: usize,
    admitted: usize,
    rejected_tenant_queue: u64,
    rejected_total: u64,
    executions: u64,
    close_k_budget_full: u64,
    close_deadline_pressure: u64,
    close_aged: u64,
    close_flush: u64,
    sim_makespan_seconds: f64,
    sim_nonzeros_per_second: f64,
    retries: u64,
    fallbacks: u64,
    bit_identical_to_solo: bool,
    tenants: Vec<TenantRow>,
    // Informational: host wall time and the submit-time queue-depth sketch.
    wall_seconds: f64,
    queue_depth_p95: f64,
    timeline_events: usize,
}

/// One deterministic request: who submits what, when.
struct Spec {
    tenant: usize,
    matrix: usize,
    k: usize,
    seed: u64,
    slo: Option<f64>,
}

/// The scripted workload: per round, the trainer offers two wide panels
/// (alternating matrices), the interactive tenant one tight query, and the
/// bursty tenant three requests against a 6-deep queue quota.
fn script() -> Vec<Vec<Spec>> {
    (0..ROUNDS)
        .map(|r| {
            let r64 = r as u64;
            let mut wave = vec![
                Spec { tenant: 0, matrix: r % 2, k: TRAIN_K, seed: 100 + 2 * r64, slo: None },
                Spec { tenant: 0, matrix: (r + 1) % 2, k: TRAIN_K, seed: 101 + 2 * r64, slo: None },
                Spec {
                    tenant: 1,
                    matrix: r % 2,
                    k: QUERY_K,
                    seed: 200 + r64,
                    slo: Some(QUERY_SLO_SIM_SECONDS),
                },
            ];
            for burst in 0..3u64 {
                wave.push(Spec {
                    tenant: 2,
                    matrix: 0,
                    k: QUERY_K,
                    seed: 300 + 3 * r64 + burst,
                    slo: None,
                });
            }
            if r == 1 {
                // A lone extra-wide panel: its group can never fill a
                // chunk before the age bound, so it exercises `Aged`.
                wave.push(Spec { tenant: 0, matrix: 1, k: 32, seed: 400, slo: None });
            }
            wave
        })
        .collect()
}

fn service_config(fault: Option<FaultPlan>) -> ServeConfig {
    let mut config = ServeConfig::new(P, CostModel::delta_scaled());
    config.max_k_per_batch = MAX_K_PER_BATCH;
    config.fault_plan = fault;
    config
}

fn run_scenario(fault_name: &str, fault: Option<FaultPlan>) -> ScenarioResult {
    let matrices = suite();
    let mut service = SpmmService::new(service_config(fault.clone()));
    let handles: Vec<MatrixHandle> = matrices
        .iter()
        .map(|(_, stripe, a)| service.register_matrix(Arc::clone(a), *stripe).unwrap())
        .collect();

    let mut frontend = Frontend::new(
        service,
        FrontendConfig {
            max_queue_depth: 24,
            quantum_k: 16,
            deadline_safety: 1.5,
            max_group_age_polls: Some(4),
            cache_pressure: 2.0, // admission pressure is not under test here
        },
    );
    let tenants = [
        frontend.register_tenant("train", TenantQuota::unlimited()).unwrap(),
        frontend.register_tenant("interactive", TenantQuota::default()).unwrap(),
        frontend
            .register_tenant("burst", TenantQuota { max_queued: 6, max_in_flight_k: 4096 })
            .unwrap(),
    ];

    let wall = Instant::now();
    let mut offered = 0usize;
    let mut admitted: Vec<(u64, Spec)> = Vec::new();
    let mut responses: Vec<FrontendResponse> = Vec::new();
    for wave in script() {
        for spec in wave {
            offered += 1;
            let mut request = FrontendRequest::new(
                handles[spec.matrix],
                dense(matrices[spec.matrix].2.cols(), spec.k, spec.seed),
            );
            if let Some(slo) = spec.slo {
                request = request.with_slo(slo);
            }
            match frontend.submit(tenants[spec.tenant], request) {
                Ok(job) => admitted.push((job.id(), spec)),
                Err(FrontendError::Rejected { .. }) => {}
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        responses.extend(frontend.poll());
    }
    responses.extend(frontend.drain());
    let wall_seconds = wall.elapsed().as_secs_f64();
    assert_eq!(responses.len(), admitted.len(), "every admitted request is answered");

    // Bit-identity vs solo: replay each admitted request alone on an
    // identically configured service.
    let mut solo = SpmmService::new(service_config(fault));
    let solo_handles: Vec<MatrixHandle> = matrices
        .iter()
        .map(|(_, stripe, a)| solo.register_matrix(Arc::clone(a), *stripe).unwrap())
        .collect();
    let mut bit_identical = true;
    let mut total_nonzeros = 0u64;
    for (job, spec) in &admitted {
        let reference = solo
            .run_one(SpmmRequest::new(
                solo_handles[spec.matrix],
                dense(matrices[spec.matrix].2.cols(), spec.k, spec.seed),
            ))
            .unwrap()
            .output
            .unwrap();
        let response = responses.iter().find(|r| r.job.id() == *job).unwrap();
        bit_identical &= response.output.as_ref().unwrap().as_slice() == reference.as_slice();
        total_nonzeros += matrices[spec.matrix].2.nnz() as u64;
    }
    assert!(bit_identical, "front-end scheduling must never change output bits");

    let close_count = |reason: CloseReason| {
        frontend.metrics().counter(&format!("frontend.close.{}", reason.label()))
    };
    let sim_makespan = frontend.service().sim_seconds();
    let tenant_rows = frontend
        .tenants()
        .into_iter()
        .map(|name| {
            let digest = frontend.tenant_digest(&name).unwrap();
            let mut latencies: Vec<f64> = responses
                .iter()
                .filter(|r| r.tenant == name)
                .map(|r| r.latency_sim_seconds())
                .collect();
            latencies.sort_by(f64::total_cmp);
            TenantRow {
                tenant: name,
                submitted: digest.submitted,
                completed: digest.completed,
                rejected: digest.rejected,
                deadline_hits: digest.deadline_hits,
                deadline_misses: digest.deadline_misses,
                sim_latency_p50_ms: percentile(&latencies, 0.50) * 1e3,
                sim_latency_p95_ms: percentile(&latencies, 0.95) * 1e3,
            }
        })
        .collect();

    ScenarioResult {
        fault: fault_name.to_string(),
        requests_offered: offered,
        admitted: admitted.len(),
        rejected_tenant_queue: frontend.metrics().counter("frontend.rejected.tenant_queue"),
        rejected_total: frontend.metrics().counter("frontend.rejected"),
        executions: frontend.metrics().counter("frontend.executions"),
        close_k_budget_full: close_count(CloseReason::KBudgetFull),
        close_deadline_pressure: close_count(CloseReason::DeadlinePressure),
        close_aged: close_count(CloseReason::Aged),
        close_flush: close_count(CloseReason::Flush),
        sim_makespan_seconds: sim_makespan,
        sim_nonzeros_per_second: total_nonzeros as f64 / sim_makespan,
        retries: frontend.service().metrics().counter("serve.retries"),
        fallbacks: frontend.service().metrics().counter("serve.fallbacks"),
        bit_identical_to_solo: bit_identical,
        tenants: tenant_rows,
        wall_seconds,
        queue_depth_p95: frontend
            .metrics()
            .histogram("frontend.queue_depth")
            .and_then(|h| h.quantile(0.95))
            .unwrap_or(0.0),
        timeline_events: frontend.timeline().len(),
    }
}

#[derive(Serialize)]
struct Results {
    description: String,
    host_note: String,
    p: usize,
    max_k_per_batch: usize,
    rounds: usize,
    query_slo_sim_seconds: f64,
    scenarios: Vec<ScenarioResult>,
}

fn main() {
    banner(
        "frontend_serving: multi-tenant deadline-aware serving",
        &format!("{P} ranks, {ROUNDS} rounds, 3 tenants, fault severities none/light"),
    );

    let mut scenarios = Vec::new();
    for (name, fault) in [("none", None), ("light", Some(FaultPlan::light(77)))] {
        let scenario = run_scenario(name, fault);
        println!(
            "\nfaults {:<6} {} offered, {} admitted, {} rejected; \
             closes: {} k-budget / {} deadline / {} aged / {} flush; \
             sim makespan {:.3}ms ({:.2e} nnz/s); {} retries, {} fallbacks",
            scenario.fault,
            scenario.requests_offered,
            scenario.admitted,
            scenario.rejected_total,
            scenario.close_k_budget_full,
            scenario.close_deadline_pressure,
            scenario.close_aged,
            scenario.close_flush,
            scenario.sim_makespan_seconds * 1e3,
            scenario.sim_nonzeros_per_second,
            scenario.retries,
            scenario.fallbacks,
        );
        for t in &scenario.tenants {
            println!(
                "  {:<12} {:>2} completed / {:>2} submitted ({} rejected); \
                 sim latency p50 {:.3}ms p95 {:.3}ms; deadlines {}/{}",
                t.tenant,
                t.completed,
                t.submitted,
                t.rejected,
                t.sim_latency_p50_ms,
                t.sim_latency_p95_ms,
                t.deadline_hits,
                t.deadline_hits + t.deadline_misses,
            );
        }
        scenarios.push(scenario);
    }

    let results = Results {
        description: "Multi-tenant front-end serving: admission outcomes, close-reason mix, \
                      deadline hit rates, and simulated throughput across fault severities, \
                      with every response verified bit-identical to a solo run"
            .into(),
        host_note: "Wall seconds and queue-depth quantiles are informational; everything else \
                    derives from the simulated clock and the deterministic inline scheduler, \
                    so it is host-independent and gated."
            .into(),
        p: P,
        max_k_per_batch: MAX_K_PER_BATCH,
        rounds: ROUNDS,
        query_slo_sim_seconds: QUERY_SLO_SIM_SECONDS,
        scenarios,
    };
    write_json("frontend_serving", &results);
}
