//! Ablation: sparse stripe width `W` (§6.2's tuning discussion).
//!
//! The paper observed growing preprocessing and runtime overheads as stripes
//! shrink, and chose widths scaling with the matrix dimension. This sweep
//! shows the tradeoff: narrow stripes give the classifier finer granularity
//! (more exactly-needed data) but multiply per-stripe overheads and multicast
//! calls; wide stripes degenerate toward whole-block transfers.

use serde::Serialize;
use std::time::Instant;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_K, DEFAULT_P};
use twoface_core::{run_algorithm, Algorithm, Problem, RunOptions};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    stripe_width: usize,
    is_table1_width: bool,
    seconds: f64,
    elements_received: u64,
    preprocessing_wall_seconds: f64,
    sync_stripes: usize,
    async_stripes: usize,
}

fn main() {
    banner(
        "Ablation: sparse stripe width W (§6.2)",
        format!("Two-Face at K = {DEFAULT_K}, p = {DEFAULT_P}; Table-1 width marked.").as_str(),
    );
    let cost = default_cost();
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>7} {:>8} {:>12} {:>14} {:>10} {:>8} {:>8}",
        "matrix", "W", "table1?", "seconds", "elements", "prep (s)", "sync", "async"
    );
    for m in [SuiteMatrix::Arabic, SuiteMatrix::Twitter, SuiteMatrix::Queen] {
        let a = cache.matrix(m);
        let table1 = m.stripe_width();
        for factor in [1usize, 2, 4, 8, 16] {
            let width = (table1 * factor / 4).max(4);
            let problem = Problem::with_generated_b(a.clone(), DEFAULT_K, DEFAULT_P, width)
                .expect("layouts are valid");
            let wall = Instant::now();
            let plan = std::sync::Arc::new(twoface_core::prepare_plan(
                &problem,
                &twoface_partition::ModelCoefficients::from(&cost),
                &cost,
            ));
            let prep = wall.elapsed().as_secs_f64();
            let (_, sync_stripes, async_stripes) = plan.class_totals();
            let report = run_algorithm(
                Algorithm::TwoFace,
                &problem,
                &cost,
                &RunOptions { compute_values: false, plan: Some(plan), ..Default::default() },
            )
            .expect("Two-Face fits");
            let row = Row {
                matrix: m.short_name(),
                stripe_width: width,
                is_table1_width: width == table1,
                seconds: report.seconds,
                elements_received: report.elements_received,
                preprocessing_wall_seconds: prep,
                sync_stripes,
                async_stripes,
            };
            println!(
                "{:<10} {:>7} {:>8} {:>12.6} {:>14} {:>10.3} {:>8} {:>8}",
                row.matrix,
                row.stripe_width,
                if row.is_table1_width { "<-" } else { "" },
                row.seconds,
                row.elements_received,
                row.preprocessing_wall_seconds,
                row.sync_stripes,
                row.async_stripes
            );
            rows.push(row);
        }
        println!();
    }
    write_json("ablation_stripe_width", &rows);
}
