//! Table 3: calibrating the preprocessing-model coefficients by linear
//! regression (§6.2).
//!
//! The paper collects nine profiled runs of the twitter matrix at K = 32
//! with different stripe widths and sync/async classifications, then fits
//! the six coefficients. This harness does the same: it runs the Two-Face
//! executor under nine (stripe width × classification) combinations,
//! collects per-rank timing components with their model features, and fits
//! three two-coefficient ordinary-least-squares regressions:
//!
//! * `SyncComm  ~ β_S · (elements multicast) + α_S · (multicast ops)`
//! * `AsyncComm ~ β_A · (K · L_A)            + α_A · S_A`
//! * `AsyncComp ~ γ_A · (K · N_A)            + κ_A · S_A`
//!
//! The fitted values are compared against the cost model actually driving
//! the simulator (the "machine truth"). `β_S` fits high because receivers'
//! measured sync time includes multicast fan-out penalties and straggler
//! waits the two-term model cannot express — the same unmodeled effects a
//! real calibration faces.

use serde::Serialize;
use std::sync::Arc;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_P};
use twoface_core::Problem;
use twoface_core::{run_algorithm, Algorithm, RunOptions};
use twoface_matrix::gen::SuiteMatrix;
use twoface_net::CostModel;
use twoface_partition::{ordinary_least_squares, r_squared, PartitionPlan, StripeClass};

const K: usize = 32;

#[derive(Serialize)]
struct FittedCoefficient {
    name: &'static str,
    fitted: f64,
    machine: f64,
    ratio: f64,
}

/// Per-rank observation: timing components plus model features.
struct Observation {
    sync_comm: f64,
    async_comm: f64,
    async_comp: f64,
    sync_elements: f64,
    sync_ops: f64,
    async_rows_k: f64,
    async_stripes: f64,
    async_nnz_k: f64,
}

fn observe(problem: &Problem, plan: Arc<PartitionPlan>, cost: &CostModel) -> Vec<Observation> {
    let layout = plan.layout().clone();
    let p = layout.nodes();
    // Features straight from the plan (what the paper derives from its
    // preprocessing metadata).
    let mut features: Vec<Observation> = (0..p)
        .map(|rank| {
            let mut sync_elements = 0f64;
            let mut sync_ops = 0f64;
            let mut async_rows = 0f64;
            let mut async_stripes = 0f64;
            let mut async_nnz = 0f64;
            for &(stripe, class) in &plan.classification(rank).classes {
                let width = layout.stripe_cols(stripe).len();
                match class {
                    StripeClass::Sync => {
                        sync_elements += (width * K) as f64;
                        sync_ops += 1.0;
                    }
                    StripeClass::Async => {
                        let profile = plan
                            .profile(rank)
                            .stripe(stripe)
                            .expect("classified stripes are profiled");
                        async_rows += profile.rows_needed() as f64;
                        async_nnz += profile.nnz as f64;
                        async_stripes += 1.0;
                    }
                    StripeClass::LocalInput => {}
                }
            }
            // Roots also issue multicasts for stripes they own.
            for stripe in layout.stripes_of_owner(rank) {
                let dests = plan.multicast_destinations(stripe).len();
                if dests > 0 {
                    sync_elements += (layout.stripe_cols(stripe).len() * K * dests) as f64;
                    sync_ops += 1.0;
                }
            }
            Observation {
                sync_comm: 0.0,
                async_comm: 0.0,
                async_comp: 0.0,
                sync_elements,
                sync_ops,
                async_rows_k: async_rows * K as f64,
                async_stripes,
                async_nnz_k: async_nnz * K as f64,
            }
        })
        .collect();

    let options = RunOptions { compute_values: false, plan: Some(plan), ..Default::default() };
    let report = run_algorithm(Algorithm::TwoFace, problem, cost, &options)
        .expect("calibration profiles fit in memory");
    for (f, b) in features.iter_mut().zip(&report.rank_breakdowns) {
        f.sync_comm = b.sync_comm;
        f.async_comm = b.async_comm;
        f.async_comp = b.async_comp;
    }
    features
}

fn main() {
    banner(
        "Table 3: coefficient calibration by linear regression (§6.2)",
        format!(
            "Nine profiles of the twitter analog, K = {K}, p = {DEFAULT_P}:\n\
             three stripe widths x three classifications."
        )
        .as_str(),
    );
    let cost = default_cost();
    let mut cache = SuiteCache::new();
    let a = cache.matrix(SuiteMatrix::Twitter);

    let mut observations: Vec<Observation> = Vec::new();
    for width in [128usize, 256, 512] {
        let problem = Problem::with_generated_b(Arc::clone(&a), K, DEFAULT_P, width)
            .expect("twitter layouts are valid");
        let layout = problem.layout.clone();
        for classification in ["model", "all-sync", "all-async"] {
            let plan = match classification {
                "model" => Arc::new(twoface_core::prepare_plan(
                    &problem,
                    &twoface_partition::ModelCoefficients::from(&cost),
                    &cost,
                )),
                "all-sync" => Arc::new(PartitionPlan::build_uniform(
                    &problem.a,
                    layout.clone(),
                    K,
                    StripeClass::Sync,
                )),
                _ => Arc::new(PartitionPlan::build_uniform(
                    &problem.a,
                    layout.clone(),
                    K,
                    StripeClass::Async,
                )),
            };
            println!("profiling: stripe width {width}, {classification}");
            observations.extend(observe(&problem, plan, &cost));
        }
    }

    // Three OLS fits.
    let fit = |xs: Vec<Vec<f64>>, ys: Vec<f64>| -> (Vec<f64>, f64) {
        let w = ordinary_least_squares(&xs, &ys).expect("well-conditioned calibration design");
        let r2 = r_squared(&xs, &ys, &w);
        (w, r2)
    };
    let (sync_fit, sync_r2) = fit(
        observations.iter().map(|o| vec![o.sync_elements, o.sync_ops]).collect(),
        observations.iter().map(|o| o.sync_comm).collect(),
    );
    let (acomm_fit, acomm_r2) = fit(
        observations.iter().map(|o| vec![o.async_rows_k, o.async_stripes]).collect(),
        observations.iter().map(|o| o.async_comm).collect(),
    );
    let (acomp_fit, acomp_r2) = fit(
        observations.iter().map(|o| vec![o.async_nnz_k, o.async_stripes]).collect(),
        observations.iter().map(|o| o.async_comp).collect(),
    );

    let rows = vec![
        FittedCoefficient {
            name: "beta_S",
            fitted: sync_fit[0],
            machine: cost.beta_sync,
            ratio: sync_fit[0] / cost.beta_sync,
        },
        FittedCoefficient {
            name: "alpha_S",
            fitted: sync_fit[1],
            machine: cost.alpha_sync,
            ratio: sync_fit[1] / cost.alpha_sync,
        },
        FittedCoefficient {
            name: "beta_A",
            fitted: acomm_fit[0],
            machine: cost.beta_async,
            ratio: acomm_fit[0] / cost.beta_async,
        },
        FittedCoefficient {
            name: "alpha_A",
            fitted: acomm_fit[1],
            machine: cost.alpha_async,
            ratio: acomm_fit[1] / cost.alpha_async,
        },
        FittedCoefficient {
            name: "gamma_A",
            fitted: acomp_fit[0],
            machine: cost.gamma_async,
            ratio: acomp_fit[0] / cost.gamma_async,
        },
        FittedCoefficient {
            name: "kappa_A",
            fitted: acomp_fit[1],
            machine: cost.kappa_async,
            ratio: acomp_fit[1] / cost.kappa_async,
        },
    ];
    println!("\n{:<10} {:>14} {:>14} {:>8}", "coeff", "fitted", "machine", "ratio");
    for r in &rows {
        println!("{:<10} {:>14.3e} {:>14.3e} {:>8.2}", r.name, r.fitted, r.machine, r.ratio);
    }
    println!("\nR²: sync comm {sync_r2:.4}, async comm {acomm_r2:.4}, async comp {acomp_r2:.4}");
    println!(
        "β_S fits above the machine value because measured sync time includes\n\
         multicast fan-out penalties and straggler waits the two-term model\n\
         cannot express — the miscalibration Figure 12 then stress-tests."
    );
    write_json("table3_calibration", &rows);
}
