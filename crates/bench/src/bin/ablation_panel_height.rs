//! Ablation: row-panel height of the synchronous/local-input sparse matrix
//! (Table 2 fixes it at 32 rows).
//!
//! Shorter panels mean more work units and more per-panel synchronization
//! (`κ` charges); taller panels coarsen scheduling. In the simulator the
//! effect is deliberately mild — the paper also found a static value fine —
//! but the sweep documents it and guards against regressions that would make
//! the panel structure load-bearing.

use serde::Serialize;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_K, DEFAULT_P};
use twoface_core::{run_algorithm, Algorithm, RunOptions, TwoFaceConfig};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    panel_height: usize,
    is_table2_default: bool,
    seconds: f64,
}

fn main() {
    banner(
        "Ablation: row panel height (Table 2: 32 rows)",
        format!("Two-Face at K = {DEFAULT_K}, p = {DEFAULT_P}.").as_str(),
    );
    let cost = default_cost();
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    println!("{:<10} {:>8} {:>10} {:>12}", "matrix", "height", "default?", "seconds");
    for m in [SuiteMatrix::Queen, SuiteMatrix::Web] {
        let problem = cache.problem(m, DEFAULT_K, DEFAULT_P).expect("suite problems are valid");
        for height in [4usize, 8, 16, 32, 64, 128, 256] {
            let config = TwoFaceConfig { row_panel_height: height, ..Default::default() };
            let report = run_algorithm(
                Algorithm::TwoFace,
                &problem,
                &cost,
                &RunOptions { compute_values: false, config, ..Default::default() },
            )
            .expect("Two-Face fits");
            println!(
                "{:<10} {:>8} {:>10} {:>12.6}",
                m.short_name(),
                height,
                if height == 32 { "<- T2" } else { "" },
                report.seconds
            );
            rows.push(Row {
                matrix: m.short_name(),
                panel_height: height,
                is_table2_default: height == 32,
                seconds: report.seconds,
            });
        }
        println!();
    }
    write_json("ablation_panel_height", &rows);
}
