//! Flight-recorder overhead on the tracing-disabled hot path.
//!
//! The always-on flight recorder (a bounded ring of the last
//! [`FLIGHT_CAPACITY_DEFAULT`] comm-op entries per rank, recorded even at
//! `TraceLevel::Off` so faulted runs are post-mortem debuggable) must be
//! effectively free on the default path users hit. This binary runs the
//! same Two-Face execution with the ring at its default capacity and with
//! the ring disabled (`set_flight_capacity(0)`), in strict alternation on a
//! caller-owned cluster, and reports:
//!
//! * **gated** — the simulated seconds and communication counters of both
//!   configurations, asserted bit-identical (the ring never touches
//!   simulated clocks);
//! * **informational** — interleaved wall-clock medians per side and their
//!   ratio. Acceptance: the ratio stays within 2% of 1.0 on a quiet host
//!   (this container is time-shared; see `host_note`).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use twoface_bench::{banner, default_cost, write_json};
use twoface_core::{run_algorithm_on, Algorithm, Problem, RunOptions};
use twoface_matrix::gen::{webcrawl, WebcrawlConfig};
use twoface_net::{Cluster, FLIGHT_CAPACITY_DEFAULT};

/// Timed (capacity-on, capacity-off) pairs, interleaved.
const PAIRS: usize = 9;

/// Untimed warmup runs per side before sampling.
const WARMUP: usize = 2;

fn main() -> ExitCode {
    banner(
        "observability: flight-recorder overhead, tracing disabled",
        "Two-Face, p = 8, K = 32, webcrawl 2048; ring at default capacity vs disabled",
    );
    let a = webcrawl(&WebcrawlConfig { n: 2048, hosts: 32, per_row: 8, ..Default::default() }, 13);
    let problem =
        Problem::with_generated_b(Arc::new(a), 32, 8, 64).expect("example problem is valid");
    let options = RunOptions::default();
    let cost = default_cost();
    let cluster = Cluster::new(8, options.config.effective_cost(&cost));

    let run = |capacity: usize| {
        cluster.set_flight_capacity(capacity);
        let started = Instant::now();
        let report = run_algorithm_on(&cluster, Algorithm::TwoFace, &problem, &cost, &options)
            .expect("no fault plan installed");
        (started.elapsed().as_nanos() as u64, report)
    };

    for _ in 0..WARMUP {
        run(FLIGHT_CAPACITY_DEFAULT);
        run(0);
    }

    let mut on_ns = Vec::new();
    let mut off_ns = Vec::new();
    let mut seconds_on = None;
    let mut seconds_off = None;
    let mut counters = None;
    for _ in 0..PAIRS {
        let (wall, report) = run(FLIGHT_CAPACITY_DEFAULT);
        on_ns.push(wall);
        assert_eq!(*seconds_on.get_or_insert(report.seconds), report.seconds, "determinism");
        counters
            .get_or_insert_with(|| twoface_bench::CommCounters::from_traces(&report.rank_traces));
        let (wall, report) = run(0);
        off_ns.push(wall);
        assert_eq!(*seconds_off.get_or_insert(report.seconds), report.seconds, "determinism");
    }
    let (seconds_on, seconds_off) = (seconds_on.unwrap(), seconds_off.unwrap());
    if seconds_on != seconds_off {
        eprintln!("error: flight recorder perturbed simulated time: {seconds_on} vs {seconds_off}");
        return ExitCode::FAILURE;
    }
    let counters = counters.unwrap();

    let on_median = median_ns(&mut on_ns);
    let off_median = median_ns(&mut off_ns);
    let ratio = on_median as f64 / off_median as f64;
    println!(
        "ring capacity {FLIGHT_CAPACITY_DEFAULT}: median {on_median} ns over {PAIRS} runs\n\
         ring disabled:    median {off_median} ns over {PAIRS} runs\n\
         on/off ratio: {ratio:.4} (acceptance: <= 1.02 on a quiet host)\n\
         simulated seconds (both sides, bit-identical): {seconds_on:.6}"
    );

    let payload = Payload {
        description: "wall-clock cost of the always-on flight recorder (bounded per-rank ring \
                      of the last comm ops) relative to a fully disabled ring, with tracing \
                      off either way"
            .into(),
        workload: "webcrawl n=2048, hosts=32, per_row=8, seed 13; Two-Face, K=32, 8 ranks, \
                   stripe width 64, full compute, interleaved pairs on one warm cluster"
            .into(),
        flight_capacity: FLIGHT_CAPACITY_DEFAULT as u64,
        simulated_seconds: seconds_on,
        counters,
        samples_per_side: PAIRS as u64,
        flight_on_median_wall_ns: on_median,
        flight_off_median_wall_ns: off_median,
        flight_on_over_off_median: ratio,
        acceptance: "disabled-path overhead <= 2%: the ring records one fixed-size entry per \
                     comm op with no allocation beyond warmup, and must never move simulated \
                     seconds (asserted bit-identical above)"
            .into(),
    };
    write_json("observability", &payload);
    ExitCode::SUCCESS
}

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The `results/observability.json` payload. Wall medians and the ratio are
/// informational by field-name policy (`median`/`wall`); the simulated
/// seconds, counters, and capacity are deterministic and baseline-gated.
#[derive(serde::Serialize)]
struct Payload {
    description: String,
    workload: String,
    flight_capacity: u64,
    simulated_seconds: f64,
    counters: twoface_bench::CommCounters,
    samples_per_side: u64,
    flight_on_median_wall_ns: u64,
    flight_off_median_wall_ns: u64,
    flight_on_over_off_median: f64,
    acceptance: String,
}
