//! Table 1: the evaluation matrices and their stripe widths.
//!
//! Prints the paper's inventory columns (rows, nonzeros, stripe width) for
//! the scaled synthetic analogs, plus the structural statistics that justify
//! each analog's class (column-degree Gini, near-diagonal fraction).

use serde::Serialize;
use twoface_bench::{banner, write_json};
use twoface_matrix::gen::SuiteMatrix;
use twoface_matrix::stats::MatrixStats;

#[derive(Serialize)]
struct Row {
    short: &'static str,
    long: &'static str,
    rows: usize,
    nnz: usize,
    stripe_width: usize,
    col_gini: f64,
    near_diagonal_fraction: f64,
    mean_row_degree: f64,
}

fn main() {
    banner(
        "Table 1: Matrices used in the evaluation (scaled analogs)",
        "Paper: eight large SuiteSparse matrices; here: deterministic synthetic\n\
         analogs at ~1:256 scale with matching structure class.",
    );
    println!(
        "{:<12} {:<20} {:>10} {:>12} {:>8} {:>9} {:>10} {:>9}",
        "Short", "Stands for", "Rows", "Nonzeros", "Stripe", "ColGini", "NearDiag", "Deg/row"
    );
    let mut out = Vec::new();
    for m in SuiteMatrix::ALL {
        let a = m.generate();
        let stats = MatrixStats::compute(&a);
        let row = Row {
            short: m.short_name(),
            long: m.long_name(),
            rows: a.rows(),
            nnz: a.nnz(),
            stripe_width: m.stripe_width(),
            col_gini: stats.col_degrees.gini,
            near_diagonal_fraction: stats.near_diagonal_fraction,
            mean_row_degree: stats.row_degrees.mean,
        };
        println!(
            "{:<12} {:<20} {:>10} {:>12} {:>8} {:>9.3} {:>10.3} {:>9.1}",
            row.short,
            row.long,
            row.rows,
            row.nnz,
            row.stripe_width,
            row.col_gini,
            row.near_diagonal_fraction,
            row.mean_row_degree,
        );
        out.push(row);
    }
    write_json("table1_matrices", &out);
}
