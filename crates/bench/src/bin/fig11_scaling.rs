//! Figure 11: strong scaling of Two-Face and dense shifting (DS1/2/4/8) from
//! 1 to 64 nodes at K = 128, plus the §7.2 multicast-recipient profile at
//! 64 nodes.
//!
//! Some data points are missing exactly as in the paper: dense shifting with
//! high replication (or any flavor at low node counts on the big matrices)
//! exceeds node memory, and DS(c) cannot run with c > p.

use serde::Serialize;
use twoface_bench::{banner, cell, default_cost, write_json, CommCounters, SuiteCache, DEFAULT_K};
use twoface_core::{run_algorithm, Algorithm, RunError, RunOptions};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Entry {
    matrix: &'static str,
    p: usize,
    algorithm: String,
    seconds: Option<f64>,
    /// Communication counters summed across ranks (`None` on OOM / n/a).
    comm: Option<CommCounters>,
}

#[derive(Serialize)]
struct RecipientProfile {
    matrix: &'static str,
    mean_multicast_recipients: Option<f64>,
}

fn main() {
    banner(
        "Figure 11: strong scaling, 1 to 64 nodes (K = 128)",
        "Missing cells: OOM (memory) or n/a (replication factor exceeds nodes).",
    );
    let cost = default_cost();
    let options = RunOptions { compute_values: false, ..Default::default() };
    let node_counts = [1usize, 2, 4, 8, 16, 32, 64];
    let algorithms = [
        Algorithm::TwoFace,
        Algorithm::DenseShifting { replication: 1 },
        Algorithm::DenseShifting { replication: 2 },
        Algorithm::DenseShifting { replication: 4 },
        Algorithm::DenseShifting { replication: 8 },
    ];
    let mut cache = SuiteCache::new();
    let mut entries = Vec::new();
    let mut profiles = Vec::new();

    for m in SuiteMatrix::ALL {
        println!("\n--- {} ---", m.short_name());
        let header: String = algorithms.iter().map(|a| format!("{:>12}", a.name())).collect();
        println!("{:<6}{header}", "p");
        for &p in &node_counts {
            let problem = cache.problem(m, DEFAULT_K, p).expect("suite problems are valid");
            let mut line = format!("{:<6}", p);
            for algo in algorithms {
                let result = run_algorithm(algo, &problem, &cost, &options);
                let (text, seconds, comm) = match result {
                    Ok(ref r) => (
                        cell(Some(r.seconds), 12, 5),
                        Some(r.seconds),
                        Some(CommCounters::from_traces(&r.rank_traces)),
                    ),
                    Err(RunError::OutOfMemory { .. }) => (format!("{:>12}", "OOM"), None, None),
                    Err(RunError::ReplicationExceedsNodes { .. }) => {
                        (format!("{:>12}", "n/a"), None, None)
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                };
                line.push_str(&text);
                entries.push(Entry {
                    matrix: m.short_name(),
                    p,
                    algorithm: algo.name(),
                    seconds,
                    comm,
                });
                // The §7.2 profile: recipients per multicast at p = 64.
                if p == 64 && algo == Algorithm::TwoFace {
                    if let Ok(r) = &result {
                        profiles.push(RecipientProfile {
                            matrix: m.short_name(),
                            mean_multicast_recipients: r.mean_multicast_recipients,
                        });
                    }
                }
            }
            println!("{line}");
        }
    }

    println!("\n===== §7.2 profile: mean multicast recipients at p = 64 =====");
    println!("(paper: twitter 35.7, friendster 43.5, next-largest kmer 5.7)");
    for prof in &profiles {
        println!("{:<12} {}", prof.matrix, cell(prof.mean_multicast_recipients, 8, 1));
    }

    // Scaling summary: Two-Face time(p=1) / time(p=64) per matrix.
    println!("\n===== Two-Face scaling 1 -> 64 nodes (paper: 7.47x mean, 12.12x best) =====");
    let mut improvements = Vec::new();
    for m in SuiteMatrix::ALL {
        let get = |p: usize| {
            entries
                .iter()
                .find(|e| e.matrix == m.short_name() && e.p == p && e.algorithm == "Two-Face")
                .and_then(|e| e.seconds)
        };
        match (get(1), get(64)) {
            (Some(t1), Some(t64)) => {
                let x = t1 / t64;
                println!("{:<12} {:>8.2}x", m.short_name(), x);
                improvements.push(x);
            }
            _ => println!("{:<12} {:>8}", m.short_name(), "n/a"),
        }
    }
    if let Some(mean) = twoface_bench::geo_mean(&improvements) {
        println!("{:<12} {:>8.2}x", "mean (geo)", mean);
    }
    #[derive(Serialize)]
    struct Out {
        entries: Vec<Entry>,
        recipient_profile_p64: Vec<RecipientProfile>,
    }
    write_json("fig11_scaling", &Out { entries, recipient_profile_p64: profiles });
}
