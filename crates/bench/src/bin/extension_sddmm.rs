//! Extension (§9): Two-Face applied to SDDMM.
//!
//! The paper's conclusion claims the algorithm transfers directly to sampled
//! dense-dense matrix multiplication. This harness substantiates it: the
//! same plans and transfer schedules run SDDMM on the full suite, and the
//! win/loss pattern mirrors the SpMM results because the communication —
//! which dominates — is identical.

use serde::Serialize;
use twoface_bench::{banner, default_cost, geo_mean, write_json, SuiteCache, DEFAULT_K, DEFAULT_P};
use twoface_core::sddmm::{run_sddmm, SddmmAlgorithm};
use twoface_core::RunOptions;
use twoface_matrix::gen::SuiteMatrix;
use twoface_matrix::DenseMatrix;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    allgather_seconds: f64,
    async_fine_seconds: f64,
    two_face_seconds: f64,
    two_face_speedup_vs_allgather: f64,
}

fn main() {
    banner(
        "Extension: distributed SDDMM via Two-Face (§9)",
        format!("C = A ⊙ (X·Yᵀ), K = {DEFAULT_K}, p = {DEFAULT_P}.").as_str(),
    );
    let cost = default_cost();
    let options = RunOptions { compute_values: false, ..Default::default() };
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "matrix", "Allgather", "AsyncFine", "Two-Face", "speedup"
    );
    for m in SuiteMatrix::ALL {
        let problem = cache.problem(m, DEFAULT_K, DEFAULT_P).expect("suite problems are valid");
        // X follows A's rows; contents are irrelevant for timing.
        let x = DenseMatrix::zeros(problem.a.rows(), DEFAULT_K);
        let time = |algo| {
            run_sddmm(algo, &problem, &x, &cost, &options)
                .expect("sddmm runs on the whole suite")
                .seconds
        };
        let row = Row {
            matrix: m.short_name(),
            allgather_seconds: time(SddmmAlgorithm::Allgather),
            async_fine_seconds: time(SddmmAlgorithm::AsyncFine),
            two_face_seconds: time(SddmmAlgorithm::TwoFace),
            two_face_speedup_vs_allgather: 0.0,
        };
        let row = Row {
            two_face_speedup_vs_allgather: row.allgather_seconds / row.two_face_seconds,
            ..row
        };
        println!(
            "{:<12} {:>12.5} {:>12.5} {:>12.5} {:>10.2}",
            row.matrix,
            row.allgather_seconds,
            row.async_fine_seconds,
            row.two_face_seconds,
            row.two_face_speedup_vs_allgather
        );
        rows.push(row);
    }
    let speedups: Vec<f64> = rows.iter().map(|r| r.two_face_speedup_vs_allgather).collect();
    println!(
        "\ngeo-mean Two-Face speedup over all-sync SDDMM: {:.2}x",
        geo_mean(&speedups).unwrap()
    );
    write_json("extension_sddmm", &rows);
}
