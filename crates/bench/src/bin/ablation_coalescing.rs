//! Ablation: row-coalescing aggressiveness in asynchronous transfers
//! (§5.2.3, Table 2's `(127/K)+1` rule).
//!
//! Sweeps the maximum merge distance on two async-heavy matrices at two K
//! values. Small distances pay per-run software overhead; large distances
//! transfer useless padding rows. The Table-2 rule should sit near the
//! minimum for each K, with the optimum shifting left as K grows.

use serde::Serialize;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_P};
use twoface_core::{run_algorithm, Algorithm, RunOptions, TwoFaceConfig};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    k: usize,
    distance: usize,
    is_rule_default: bool,
    seconds: f64,
    elements_received: u64,
}

fn main() {
    banner(
        "Ablation: async row-coalescing distance (§5.2.3)",
        "Async Fine runs (all stripes fine-grained) so the knob dominates;\n\
         elements_received grows with padding, time balances runs vs padding.",
    );
    let cost = default_cost();
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>5} {:>9} {:>8} {:>12} {:>14}",
        "matrix", "K", "distance", "rule?", "seconds", "elements"
    );
    for m in [SuiteMatrix::Kmer, SuiteMatrix::Arabic] {
        for k in [32usize, 128] {
            let problem = cache.problem(m, k, DEFAULT_P).expect("suite problems are valid");
            let rule = TwoFaceConfig::default().max_coalesce_distance(k);
            for distance in [1usize, 2, 4, 8, 16, 32] {
                let config = TwoFaceConfig {
                    coalesce_distance_override: Some(distance),
                    ..Default::default()
                };
                let report = run_algorithm(
                    Algorithm::AsyncFine,
                    &problem,
                    &cost,
                    &RunOptions { compute_values: false, config, ..Default::default() },
                )
                .expect("async fine always fits");
                let row = Row {
                    matrix: m.short_name(),
                    k,
                    distance,
                    is_rule_default: distance == rule,
                    seconds: report.seconds,
                    elements_received: report.elements_received,
                };
                println!(
                    "{:<10} {:>5} {:>9} {:>8} {:>12.6} {:>14}",
                    row.matrix,
                    row.k,
                    row.distance,
                    if row.is_rule_default { "<- rule" } else { "" },
                    row.seconds,
                    row.elements_received
                );
                rows.push(row);
            }
            println!();
        }
    }
    write_json("ablation_coalescing", &rows);
}
