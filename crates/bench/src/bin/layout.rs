//! Memory-layout + streaming bench (`results/layout.json`, summarized in
//! the committed `BENCH_layout.json`).
//!
//! Two sections:
//!
//! 1. **Streamed (out-of-core)**: a 10^7-nonzero R-MAT Two-Face run through
//!    [`run_twoface_streamed`] under a small declared host memory budget,
//!    with the process peak RSS (`VmHWM`) asserted against a hard bound.
//!    This section runs *first* — `VmHWM` is a process-lifetime high-water
//!    mark, so the streamed reading is only meaningful before the resident
//!    runs inflate it.
//! 2. **Resident**: end-to-end Two-Face (prepare + execute, 1 worker) on
//!    the 10^7 suite at K ∈ {8, 32, 128} — the workload whose pre-change
//!    numbers are recorded in `BENCH_layout.json`; re-running this binary
//!    reproduces the "after" side.
//!
//! Field policy for the fleet gate: simulated seconds, communication
//! counters, nonzero counts, spill sizes, and the simulated-time throughput
//! are deterministic and gated exactly; anything wall-clock- or
//! host-dependent carries `wall` in its field name (informational, the
//! 1-CPU host note applies).
//!
//! `TWOFACE_LAYOUT_LARGE=1` additionally runs the 10^8-nonzero acceptance
//! section (streamed under a declared budget, then the resident path at the
//! same scale for the peak-RSS comparison). Its numbers are printed and
//! recorded in `BENCH_layout.json`, not in the gated report, so the gated
//! file has the same shape in both modes.

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use twoface_bench::{default_cost, write_json};
use twoface_core::{
    peak_rss_bytes, run_algorithm, run_twoface_streamed, Algorithm, PreparedMatrix, Problem,
    RunOptions, StreamOptions, StreamedRun,
};
use twoface_matrix::gen::{rmat, webcrawl, RmatChunks, RmatConfig, WebcrawlConfig};
use twoface_matrix::CooMatrix;
use twoface_net::CostModel;

const P: usize = 32;

/// Streamed-section budget: 384 MiB hosts the dense blocks, the spill
/// chunk, and the per-stripe transients at 10^7 nonzeros with room to
/// spare, while sitting far below what the resident path needs end to end.
const STREAM_BUDGET: usize = 384 << 20;

/// Hard peak-RSS bound for the streamed 10^7 section (budget + allocator /
/// binary overhead). The resident path at the same scale peaks well above
/// 1 GiB, so this bound fails if streaming ever silently materializes.
const STREAM_RSS_BOUND: usize = 768 << 20;

fn rmat10m_config() -> RmatConfig {
    RmatConfig { scale: 19, edge_factor: 20, a: 0.57, b: 0.19, c: 0.19, noise: 0.05 }
}

#[derive(Serialize)]
struct StreamedSection {
    matrix: &'static str,
    k: usize,
    stripe_width: usize,
    memory_budget_bytes: usize,
    realized_nnz: usize,
    spilled_bytes: usize,
    peak_shard_bytes: usize,
    estimated_host_bytes: usize,
    simulated_seconds: f64,
    /// Deterministic per-nonzero throughput of the *simulated* cluster.
    sim_throughput_nnz_per_sim_s: f64,
    peak_rss_wall_mb: Option<f64>,
    rss_bound_wall_mb: f64,
    pipeline_wall_s: f64,
}

#[derive(Serialize)]
struct ResidentEntry {
    matrix: &'static str,
    k: usize,
    nnz: usize,
    simulated_seconds: f64,
    sim_throughput_nnz_per_sim_s: f64,
    prep_wall_s: f64,
    exec_wall_s: f64,
    e2e_wall_s: f64,
    wall_mnnz_per_s: f64,
}

#[derive(Serialize)]
struct Report {
    p: usize,
    workers: usize,
    streamed: StreamedSection,
    resident: Vec<ResidentEntry>,
    resident_peak_rss_wall_mb: Option<f64>,
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

fn run_streamed(
    name: &'static str,
    config: &RmatConfig,
    seed: u64,
    k: usize,
    stripe_width: usize,
    budget: usize,
    cost: &CostModel,
) -> (StreamedRun, f64) {
    let mut source = RmatChunks::new(config, seed);
    let options =
        StreamOptions { workers: Some(1), memory_budget: Some(budget), ..Default::default() };
    let t0 = Instant::now();
    let run = run_twoface_streamed(&mut source, k, P, stripe_width, cost, &options)
        .unwrap_or_else(|e| panic!("streamed {name} run failed: {e}"));
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "streamed {name} K={k}: {} nnz, spilled {:.0} MiB (peak shard {:.0} MiB), \
         est host {:.0} MiB under {:.0} MiB budget, sim {:.6}s, wall {wall:.1}s",
        run.realized_nnz,
        mb(run.spilled_bytes),
        mb(run.peak_shard_bytes),
        mb(run.estimated_host_bytes),
        mb(budget),
        run.report.seconds,
    );
    (run, wall)
}

fn resident_suite() -> Vec<(&'static str, CooMatrix, usize)> {
    let t0 = Instant::now();
    let r = rmat(&rmat10m_config(), 0x10a);
    eprintln!("gen rmat10m: {} nnz in {:.1}s", r.nnz(), t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let w = webcrawl(
        &WebcrawlConfig {
            n: 1 << 18,
            hosts: 2048,
            per_row: 40,
            intra_host: 0.985,
            portal_bias: 0.95,
            portals: 24,
        },
        0x10b,
    );
    eprintln!("gen web10m: {} nnz in {:.1}s", w.nnz(), t0.elapsed().as_secs_f64());
    vec![("rmat10m", r, 1024), ("web10m", w, 512)]
}

/// The 10^8-nonzero acceptance section (`TWOFACE_LAYOUT_LARGE=1`):
/// streamed under a declared budget, then resident at the same scale, with
/// the streamed peak RSS required to stay at ≤ 1/4 of the resident peak.
fn run_large(cost: &CostModel) {
    let config = RmatConfig { scale: 22, edge_factor: 24, a: 0.57, b: 0.19, c: 0.19, noise: 0.05 };
    let budget: usize = 4 << 30;
    // 10x the matrix needs bigger *simulated* nodes than the ~1:256-scaled
    // Table-2 default (the simulated OutOfMemory gate is orthogonal to the
    // host budget this section is actually exercising).
    let cost = &CostModel { memory_per_node: 2 << 30, ..*cost };
    let (run, wall) = run_streamed("rmat100m", &config, 0x10c, 8, 2048, budget, cost);
    let streamed_rss = peak_rss_bytes().expect("Linux host exposes VmHWM");
    println!(
        "large streamed: peak RSS {:.0} MiB (budget {:.0} MiB), wall {wall:.1}s",
        mb(streamed_rss),
        mb(budget)
    );
    assert!(
        streamed_rss <= budget,
        "streamed 10^8 run peak RSS {:.0} MiB exceeds its declared {:.0} MiB budget",
        mb(streamed_rss),
        mb(budget)
    );

    // Resident at the same scale, same seed: the RSS yardstick and the
    // overlap-scale output check.
    let t0 = Instant::now();
    let a = Arc::new(rmat(&config, 0x10c));
    eprintln!("gen rmat100m resident: {} nnz in {:.1}s", a.nnz(), t0.elapsed().as_secs_f64());
    assert_eq!(a.nnz(), run.realized_nnz, "streamed and resident normalization disagree");
    let problem = Problem::with_generated_b(a, 8, P, 2048).expect("resident 10^8 fits this host");
    let options = RunOptions { workers: Some(1), ..Default::default() };
    let t0 = Instant::now();
    let report =
        run_algorithm(Algorithm::TwoFace, &problem, cost, &options).expect("resident run fits");
    assert_eq!(
        report.seconds, run.report.seconds,
        "streamed and resident simulated time disagree at 10^8"
    );
    let resident_rss = peak_rss_bytes().expect("Linux host exposes VmHWM");
    let ratio = streamed_rss as f64 / resident_rss as f64;
    println!(
        "large resident: sim {:.6}s, wall {:.1}s, peak RSS {:.0} MiB -> streamed/resident \
         RSS ratio {ratio:.3}",
        report.seconds,
        t0.elapsed().as_secs_f64(),
        mb(resident_rss)
    );
    assert!(
        ratio <= 0.25,
        "streamed peak RSS must stay at <= 1/4 of the resident path's ({:.0} vs {:.0} MiB)",
        mb(streamed_rss),
        mb(resident_rss)
    );
}

fn main() {
    let cost = default_cost();

    // Section 1 (first: VmHWM is monotone): streamed 10^7 under budget.
    let (streamed_run, streamed_wall) =
        run_streamed("rmat10m", &rmat10m_config(), 0x10a, 8, 1024, STREAM_BUDGET, &cost);
    let streamed_rss = peak_rss_bytes();
    if let Some(rss) = streamed_rss {
        println!("streamed peak RSS {:.0} MiB (bound {:.0} MiB)", mb(rss), mb(STREAM_RSS_BOUND));
        assert!(
            rss <= STREAM_RSS_BOUND,
            "streamed 10^7 peak RSS {:.0} MiB exceeds the {:.0} MiB bound — the \
             out-of-core pipeline is materializing something it should stream",
            mb(rss),
            mb(STREAM_RSS_BOUND)
        );
    }
    let streamed = StreamedSection {
        matrix: "rmat10m",
        k: 8,
        stripe_width: 1024,
        memory_budget_bytes: STREAM_BUDGET,
        realized_nnz: streamed_run.realized_nnz,
        spilled_bytes: streamed_run.spilled_bytes,
        peak_shard_bytes: streamed_run.peak_shard_bytes,
        estimated_host_bytes: streamed_run.estimated_host_bytes,
        simulated_seconds: streamed_run.report.seconds,
        sim_throughput_nnz_per_sim_s: streamed_run.realized_nnz as f64
            / streamed_run.report.seconds,
        peak_rss_wall_mb: streamed_rss.map(mb),
        rss_bound_wall_mb: mb(STREAM_RSS_BOUND),
        pipeline_wall_s: streamed_wall,
    };

    if std::env::var("TWOFACE_LAYOUT_LARGE").is_ok_and(|v| v == "1") {
        run_large(&cost);
    }

    // Section 2: the resident 10^7 suite at 1 worker — the BENCH_layout
    // before/after workload.
    let mut resident = Vec::new();
    for (name, a, stripe_width) in resident_suite() {
        let nnz = a.nnz();
        let a = Arc::new(a);
        for k in [8usize, 32, 128] {
            let problem = Problem::with_generated_b(Arc::clone(&a), k, P, stripe_width)
                .expect("suite problem is valid");
            let options = RunOptions { workers: Some(1), ..Default::default() };
            let t0 = Instant::now();
            let prepared =
                Arc::new(PreparedMatrix::build(&problem, &cost, &options).expect("prepare"));
            let prep_s = t0.elapsed().as_secs_f64();
            let options = RunOptions { prepared: Some(prepared), ..options };
            let t1 = Instant::now();
            let report = run_algorithm(Algorithm::TwoFace, &problem, &cost, &options)
                .expect("two-face fits");
            let exec_s = t1.elapsed().as_secs_f64();
            let e2e = prep_s + exec_s;
            println!(
                "{name} K={k}: prep {prep_s:.3}s exec {exec_s:.3}s e2e {e2e:.3}s \
                 ({:.1} Mnnz/s) sim {:.6}s",
                nnz as f64 / e2e / 1e6,
                report.seconds
            );
            resident.push(ResidentEntry {
                matrix: name,
                k,
                nnz,
                simulated_seconds: report.seconds,
                sim_throughput_nnz_per_sim_s: nnz as f64 / report.seconds,
                prep_wall_s: prep_s,
                exec_wall_s: exec_s,
                e2e_wall_s: e2e,
                wall_mnnz_per_s: nnz as f64 / e2e / 1e6,
            });
        }
    }
    let resident_rss = peak_rss_bytes();

    write_json(
        "layout",
        &Report {
            p: P,
            workers: 1,
            streamed,
            resident,
            resident_peak_rss_wall_mb: resident_rss.map(mb),
        },
    );
}
