//! Ablation: column-major vs row-major nonzero order in asynchronous
//! stripes — the §7.1 experiment.
//!
//! The paper tried storing async nonzeros row-major (cheaper, buffered
//! compute) and rejected it: "the cost of identifying which columns
//! contained nonzeros (and therefore which dense rows were required) became
//! drastically higher". This sweep reruns that experiment across K: the
//! identification cost is K-independent while the atomic-compute savings
//! grow with K, so column-major wins at small-to-moderate K — the paper's
//! operating points — with a crossover at large K.

use serde::Serialize;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_P};
use twoface_core::{run_algorithm, Algorithm, AsyncLayout, RunOptions, TwoFaceConfig};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    k: usize,
    column_major_seconds: f64,
    row_major_seconds: f64,
    row_major_relative: f64,
}

fn main() {
    banner(
        "Ablation: async stripe nonzero order (§7.1)",
        format!(
            "Async Fine (all stripes fine-grained) so the async lane is the\n\
             critical path, p = {DEFAULT_P}; relative > 1 means row-major loses."
        )
        .as_str(),
    );
    let cost = default_cost();
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>5} {:>14} {:>14} {:>10}",
        "matrix", "K", "col-major (s)", "row-major (s)", "relative"
    );
    // Async-heavy matrices where the layout actually matters.
    for m in [SuiteMatrix::Mawi, SuiteMatrix::Kmer, SuiteMatrix::Arabic] {
        for k in [32usize, 128, 512] {
            let problem = cache.problem(m, k, DEFAULT_P).expect("suite problems are valid");
            let time = |layout| {
                let config = TwoFaceConfig { async_layout: layout, ..Default::default() };
                run_algorithm(
                    Algorithm::AsyncFine,
                    &problem,
                    &cost,
                    &RunOptions { compute_values: false, config, ..Default::default() },
                )
                .expect("Async Fine fits")
                .seconds
            };
            let col = time(AsyncLayout::ColumnMajor);
            let row = time(AsyncLayout::RowMajor);
            let rel = row / col;
            println!("{:<10} {:>5} {:>14.6} {:>14.6} {:>10.2}", m.short_name(), k, col, row, rel);
            rows.push(Row {
                matrix: m.short_name(),
                k,
                column_major_seconds: col,
                row_major_seconds: row,
                row_major_relative: rel,
            });
        }
        println!();
    }
    write_json("ablation_async_layout", &rows);
}
