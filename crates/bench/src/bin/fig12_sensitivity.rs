//! Figure 12: sensitivity of Two-Face's execution time to the preprocessing
//! model's coefficient values.
//!
//! Three 3×3 grids: scale (α_A, β_A), (α_S, β_S), and (γ_A, κ_A) by
//! {0.8, 1.0, 1.25} *in the coefficients handed to the classifier only* —
//! the simulated machine is unchanged, so a miscalibrated model misclassifies
//! stripes and the execution slows down. Cells are execution time relative
//! to the default coefficients, averaged over the paper's three
//! representative matrices: web (best case), twitter (worst case), stokes
//! (median case).

use serde::Serialize;
use twoface_bench::{banner, default_cost, geo_mean, write_json, SuiteCache, DEFAULT_K, DEFAULT_P};
use twoface_core::{run_algorithm, Algorithm, RunOptions};
use twoface_matrix::gen::SuiteMatrix;
use twoface_partition::ModelCoefficients;

const MATRICES: [SuiteMatrix; 3] = [SuiteMatrix::Web, SuiteMatrix::Twitter, SuiteMatrix::Stokes];
const SCALES: [f64; 3] = [0.8, 1.0, 1.25];

#[derive(Serialize)]
struct Grid {
    varied: &'static str,
    /// `cells[i][j]` = relative time at row scale `SCALES[i]`, column scale
    /// `SCALES[j]`.
    cells: [[f64; 3]; 3],
}

fn main() {
    banner(
        "Figure 12: sensitivity to the preprocessing model's coefficients",
        format!(
            "K = {DEFAULT_K}, p = {DEFAULT_P}; geometric mean over web, twitter, stokes;\n\
             1.00 = default (regression-calibrated) coefficients."
        )
        .as_str(),
    );
    let cost = default_cost();
    let mut cache = SuiteCache::new();
    let problems: Vec<_> = MATRICES
        .iter()
        .map(|&m| cache.problem(m, DEFAULT_K, DEFAULT_P).expect("suite problems are valid"))
        .collect();

    let baseline: Vec<f64> = problems
        .iter()
        .map(|problem| {
            run_algorithm(
                Algorithm::TwoFace,
                problem,
                &cost,
                &RunOptions { compute_values: false, ..Default::default() },
            )
            .expect("Two-Face fits")
            .seconds
        })
        .collect();

    // (label, row setter (alpha-like), column setter (beta-like)).
    type Setter = fn(&mut ModelCoefficients, f64);
    let grids: [(&'static str, Setter, Setter); 3] = [
        (
            "(a) varying alpha_A (rows) and beta_A (cols)",
            |c, s| c.alpha_async *= s,
            |c, s| c.beta_async *= s,
        ),
        (
            "(b) varying alpha_S (rows) and beta_S (cols)",
            |c, s| c.alpha_sync *= s,
            |c, s| c.beta_sync *= s,
        ),
        (
            "(c) varying gamma_A (rows) and kappa_A (cols)",
            |c, s| c.gamma_async *= s,
            |c, s| c.kappa_async *= s,
        ),
    ];

    let mut out = Vec::new();
    for (label, set_row, set_col) in grids {
        println!("\n{label}");
        print!("{:>8}", "");
        for cs in SCALES {
            print!("{cs:>8.2}");
        }
        println!();
        let mut cells = [[0.0f64; 3]; 3];
        for (i, rs) in SCALES.iter().enumerate() {
            print!("{rs:>8.2}");
            for (j, cs) in SCALES.iter().enumerate() {
                let mut coeffs = ModelCoefficients::from(&cost);
                set_row(&mut coeffs, *rs);
                set_col(&mut coeffs, *cs);
                let relatives: Vec<f64> = problems
                    .iter()
                    .zip(&baseline)
                    .map(|(problem, base)| {
                        let report = run_algorithm(
                            Algorithm::TwoFace,
                            problem,
                            &cost,
                            &RunOptions {
                                compute_values: false,
                                coefficients: Some(coeffs),
                                ..Default::default()
                            },
                        )
                        .expect("Two-Face fits");
                        report.seconds / base
                    })
                    .collect();
                let mean = geo_mean(&relatives).expect("three matrices");
                cells[i][j] = mean;
                print!("{mean:>8.2}");
            }
            println!();
        }
        out.push(Grid { varied: label, cells });
    }
    println!(
        "\nAs in the paper, the default (1.00, 1.00) cell should be at or near the\n\
         minimum of each grid: calibrated coefficients are a good operating point."
    );
    write_json("fig12_sensitivity", &out);
}
