//! Figure 10: breakdown of the total execution times of DS4 and Two-Face at
//! K = 128.
//!
//! Two-Face's time splits into a synchronous bar (Sync Comp + Sync Comm) and
//! an asynchronous bar (Async Comp + Async Comm) that run in parallel; the
//! execution time is the taller of the two. DS4 only has the synchronous
//! components. Everything is normalized to DS4, as in the paper.

use serde::Serialize;
use twoface_bench::{
    banner, default_cost, write_json, CommCounters, SuiteCache, DEFAULT_K, DEFAULT_P,
};
use twoface_core::{run_algorithm, Algorithm, Breakdown, RunError, RunOptions};
use twoface_matrix::gen::SuiteMatrix;
use twoface_net::Observability;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    ds4: Option<BreakdownOut>,
    two_face: BreakdownOut,
    /// Two-Face execution time normalized to DS4 (the paper's y-axis).
    two_face_normalized: Option<f64>,
    /// Two-Face's critical-rank breakdown re-derived from the per-operation
    /// event stream instead of the aggregate trace — cross-checked against
    /// `two_face` before the JSON is written.
    two_face_from_events: BreakdownOut,
    /// Per-nonzero throughput of Two-Face in simulated time: `nnz /
    /// two_face.seconds`. Host-independent (derived from the deterministic
    /// simulation), so the fleet gate guards it hard.
    two_face_sim_nnz_per_second: f64,
    /// Two-Face communication counters summed across ranks.
    two_face_comm: CommCounters,
    /// The same counters per rank, indexed by rank.
    two_face_rank_comm: Vec<CommCounters>,
}

#[derive(Serialize)]
struct BreakdownOut {
    seconds: f64,
    sync_comm: f64,
    sync_comp: f64,
    async_comm: f64,
    async_comp: f64,
    other: f64,
}

impl BreakdownOut {
    fn new(seconds: f64, b: &Breakdown) -> BreakdownOut {
        BreakdownOut {
            seconds,
            sync_comm: b.sync_comm,
            sync_comp: b.sync_comp,
            async_comm: b.async_comm,
            async_comp: b.async_comp,
            other: b.other,
        }
    }
}

/// Asserts that the event-derived breakdown agrees with the aggregate-trace
/// breakdown. The two accounting systems round independently (the aggregate
/// adds wait + cost in one step, events in two), so exact equality is not
/// guaranteed — but disagreement beyond float rounding means an operation
/// was recorded in one system and not the other.
fn assert_consistent(matrix: &str, from_trace: &Breakdown, from_events: &Breakdown) {
    let tolerance = 1e-9 * from_trace.total().max(1e-30);
    for (label, t, e) in [
        ("sync_comm", from_trace.sync_comm, from_events.sync_comm),
        ("sync_comp", from_trace.sync_comp, from_events.sync_comp),
        ("async_comm", from_trace.async_comm, from_events.async_comm),
        ("async_comp", from_trace.async_comp, from_events.async_comp),
        ("other", from_trace.other, from_events.other),
        ("recovery", from_trace.recovery, from_events.recovery),
    ] {
        assert!(
            (t - e).abs() <= tolerance,
            "{matrix}: event stream disagrees with aggregate trace on {label}: {t} vs {e}"
        );
    }
}

fn main() {
    banner(
        "Figure 10: execution time breakdown, DS4 vs Two-Face (K = 128)",
        format!(
            "p = {DEFAULT_P}; components from the critical (slowest) rank's trace;\n\
             Two-Face's sync and async bars overlap in time."
        )
        .as_str(),
    );
    let cost = default_cost();
    let options = RunOptions { compute_values: false, ..Default::default() };
    // Two-Face runs with full event tracing so the breakdown can be
    // re-derived from the per-operation stream and cross-checked.
    let traced = RunOptions { observability: Observability::full(), ..options.clone() };
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    println!(
        "{:<12} {:>9} | {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>8}",
        "matrix",
        "DS4 (s)",
        "DS4 comm",
        "DS4 comp",
        "TF s.comm",
        "TF s.comp",
        "TF a.comm",
        "TF a.comp",
        "TF other",
        "TF/DS4"
    );
    for m in SuiteMatrix::ALL {
        let problem = cache.problem(m, DEFAULT_K, DEFAULT_P).expect("suite problems are valid");
        let ds4 = match run_algorithm(
            Algorithm::DenseShifting { replication: 4 },
            &problem,
            &cost,
            &options,
        ) {
            Ok(r) => Some(r),
            Err(RunError::OutOfMemory { .. }) => None,
            Err(e) => panic!("unexpected error: {e}"),
        };
        let tf = run_algorithm(Algorithm::TwoFace, &problem, &cost, &traced)
            .expect("Two-Face fits in memory on the whole suite");
        let from_events = Breakdown::from_events(&tf.rank_events[tf.critical_rank]);
        assert_consistent(m.short_name(), &tf.critical_breakdown, &from_events);
        let normalized = ds4.as_ref().map(|d| tf.seconds / d.seconds);
        let b = &tf.critical_breakdown;
        match &ds4 {
            Some(d) => println!(
                "{:<12} {:>9.5} | {:>9.5} {:>9.5} | {:>9.5} {:>9.5} {:>9.5} {:>9.5} {:>9.5} | {:>8.2}",
                m.short_name(),
                d.seconds,
                d.critical_breakdown.sync_comm,
                d.critical_breakdown.sync_comp,
                b.sync_comm,
                b.sync_comp,
                b.async_comm,
                b.async_comp,
                b.other,
                normalized.unwrap_or(f64::NAN),
            ),
            None => println!(
                "{:<12} {:>9} | {:>9} {:>9} | {:>9.5} {:>9.5} {:>9.5} {:>9.5} {:>9.5} | {:>8}",
                m.short_name(),
                "OOM",
                "-",
                "-",
                b.sync_comm,
                b.sync_comp,
                b.async_comm,
                b.async_comp,
                b.other,
                "-",
            ),
        }
        rows.push(Row {
            matrix: m.short_name(),
            ds4: ds4.as_ref().map(|d| BreakdownOut::new(d.seconds, &d.critical_breakdown)),
            two_face: BreakdownOut::new(tf.seconds, &tf.critical_breakdown),
            two_face_normalized: normalized,
            two_face_sim_nnz_per_second: problem.a.nnz() as f64 / tf.seconds,
            two_face_from_events: BreakdownOut::new(tf.seconds, &from_events),
            two_face_comm: CommCounters::from_traces(&tf.rank_traces),
            two_face_rank_comm: tf.rank_traces.iter().map(CommCounters::from_trace).collect(),
        });
    }
    println!(
        "\nReading guide: for DS4 the communication column dominates (distributed\n\
         SpMM is communication-bound); Two-Face's win comes from shrinking sync\n\
         comm; mawi's async-comp column shows the atomics-bound pathology; on\n\
         twitter/friendster the sync comm column exceeds DS4's.\n\
         Every Two-Face breakdown above was cross-checked against the\n\
         per-operation event stream (see two_face_from_events in the JSON)."
    );
    write_json("fig10_breakdown", &rows);
}
