//! Figure 10: breakdown of the total execution times of DS4 and Two-Face at
//! K = 128.
//!
//! Two-Face's time splits into a synchronous bar (Sync Comp + Sync Comm) and
//! an asynchronous bar (Async Comp + Async Comm) that run in parallel; the
//! execution time is the taller of the two. DS4 only has the synchronous
//! components. Everything is normalized to DS4, as in the paper.

use serde::Serialize;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_K, DEFAULT_P};
use twoface_core::{run_algorithm, Algorithm, Breakdown, RunError, RunOptions};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    ds4: Option<BreakdownOut>,
    two_face: BreakdownOut,
    /// Two-Face execution time normalized to DS4 (the paper's y-axis).
    two_face_normalized: Option<f64>,
}

#[derive(Serialize)]
struct BreakdownOut {
    seconds: f64,
    sync_comm: f64,
    sync_comp: f64,
    async_comm: f64,
    async_comp: f64,
    other: f64,
}

impl BreakdownOut {
    fn new(seconds: f64, b: &Breakdown) -> BreakdownOut {
        BreakdownOut {
            seconds,
            sync_comm: b.sync_comm,
            sync_comp: b.sync_comp,
            async_comm: b.async_comm,
            async_comp: b.async_comp,
            other: b.other,
        }
    }
}

fn main() {
    banner(
        "Figure 10: execution time breakdown, DS4 vs Two-Face (K = 128)",
        format!(
            "p = {DEFAULT_P}; components from the critical (slowest) rank's trace;\n\
             Two-Face's sync and async bars overlap in time."
        )
        .as_str(),
    );
    let cost = default_cost();
    let options = RunOptions { compute_values: false, ..Default::default() };
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    println!(
        "{:<12} {:>9} | {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>8}",
        "matrix",
        "DS4 (s)",
        "DS4 comm",
        "DS4 comp",
        "TF s.comm",
        "TF s.comp",
        "TF a.comm",
        "TF a.comp",
        "TF other",
        "TF/DS4"
    );
    for m in SuiteMatrix::ALL {
        let problem = cache.problem(m, DEFAULT_K, DEFAULT_P).expect("suite problems are valid");
        let ds4 = match run_algorithm(
            Algorithm::DenseShifting { replication: 4 },
            &problem,
            &cost,
            &options,
        ) {
            Ok(r) => Some(r),
            Err(RunError::OutOfMemory { .. }) => None,
            Err(e) => panic!("unexpected error: {e}"),
        };
        let tf = run_algorithm(Algorithm::TwoFace, &problem, &cost, &options)
            .expect("Two-Face fits in memory on the whole suite");
        let normalized = ds4.as_ref().map(|d| tf.seconds / d.seconds);
        let b = &tf.critical_breakdown;
        match &ds4 {
            Some(d) => println!(
                "{:<12} {:>9.5} | {:>9.5} {:>9.5} | {:>9.5} {:>9.5} {:>9.5} {:>9.5} {:>9.5} | {:>8.2}",
                m.short_name(),
                d.seconds,
                d.critical_breakdown.sync_comm,
                d.critical_breakdown.sync_comp,
                b.sync_comm,
                b.sync_comp,
                b.async_comm,
                b.async_comp,
                b.other,
                normalized.unwrap_or(f64::NAN),
            ),
            None => println!(
                "{:<12} {:>9} | {:>9} {:>9} | {:>9.5} {:>9.5} {:>9.5} {:>9.5} {:>9.5} | {:>8}",
                m.short_name(),
                "OOM",
                "-",
                "-",
                b.sync_comm,
                b.sync_comp,
                b.async_comm,
                b.async_comp,
                b.other,
                "-",
            ),
        }
        rows.push(Row {
            matrix: m.short_name(),
            ds4: ds4.as_ref().map(|d| BreakdownOut::new(d.seconds, &d.critical_breakdown)),
            two_face: BreakdownOut::new(tf.seconds, &tf.critical_breakdown),
            two_face_normalized: normalized,
        });
    }
    println!(
        "\nReading guide: for DS4 the communication column dominates (distributed\n\
         SpMM is communication-bound); Two-Face's win comes from shrinking sync\n\
         comm; mawi's async-comp column shows the atomics-bound pathology; on\n\
         twitter/friendster the sync comm column exceeds DS4's."
    );
    write_json("fig10_breakdown", &rows);
}
