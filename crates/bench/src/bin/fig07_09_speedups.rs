//! Figures 7, 8, 9 and Table 5: speedups of every algorithm over DS2 for
//! K ∈ {32, 128, 512}, plus the absolute DS2 / Two-Face execution times.
//!
//! The headline claims reproduced here: Two-Face is the fastest algorithm on
//! average; its advantage over dense shifting grows with K; it wins big on
//! the locality-heavy matrices (web, queen, stokes, arabic, kmer) and loses
//! on the large-multicast ones (twitter, friendster); DS with higher
//! replication factors runs out of memory on the big matrices at K = 512.

use serde::Serialize;
use std::collections::BTreeMap;
use twoface_bench::{
    banner, cell, default_cost, geo_mean, write_json, CommCounters, SuiteCache, DEFAULT_P,
};
use twoface_core::{run_algorithm, Algorithm, RunError, RunOptions};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Entry {
    matrix: &'static str,
    k: usize,
    algorithm: String,
    seconds: Option<f64>,
    speedup_vs_ds2: Option<f64>,
    /// Communication counters summed across ranks (`None` when the run did
    /// not fit in memory).
    comm: Option<CommCounters>,
}

fn main() {
    banner(
        "Figures 7-9 + Table 5: algorithm speedups over DS2 for K in {32, 128, 512}",
        format!("p = {DEFAULT_P} nodes; bars normalized to DS2 as in the paper.").as_str(),
    );
    let cost = default_cost();
    let options = RunOptions { compute_values: false, ..Default::default() };
    let mut cache = SuiteCache::new();
    let mut entries: Vec<Entry> = Vec::new();
    let lineup = Algorithm::FIGURE7_LINEUP;

    for k in [32usize, 128, 512] {
        println!(
            "\n===== K = {k} (Figure {}) =====",
            match k {
                32 => "7",
                128 => "8",
                _ => "9",
            }
        );
        let header: String = lineup.iter().map(|a| format!("{:>12}", a.name())).collect();
        println!("{:<12}{header}", "matrix");
        let mut speedups_by_algo: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for m in SuiteMatrix::ALL {
            let problem = cache.problem(m, k, DEFAULT_P).expect("suite problems are valid");
            let mut seconds: Vec<(Algorithm, Option<(f64, CommCounters)>)> = Vec::new();
            for algo in lineup {
                let s = match run_algorithm(algo, &problem, &cost, &options) {
                    Ok(r) => Some((r.seconds, CommCounters::from_traces(&r.rank_traces))),
                    Err(RunError::OutOfMemory { .. }) => None,
                    Err(e) => panic!("unexpected error for {algo} on {m}: {e}"),
                };
                seconds.push((algo, s));
            }
            let ds2 = seconds
                .iter()
                .find(|(a, _)| matches!(a, Algorithm::DenseShifting { replication: 2 }))
                .and_then(|(_, s)| s.map(|(s, _)| s))
                .expect("DS2 never runs out of memory in the evaluation");
            let mut line = format!("{:<12}", m.short_name());
            for (algo, s) in &seconds {
                let speedup = s.map(|(s, _)| ds2 / s);
                line.push_str(&cell(speedup, 12, 2));
                if let Some(sp) = speedup {
                    speedups_by_algo.entry(algo.name()).or_default().push(sp);
                }
                entries.push(Entry {
                    matrix: m.short_name(),
                    k,
                    algorithm: algo.name(),
                    seconds: s.map(|(s, _)| s),
                    speedup_vs_ds2: speedup,
                    comm: s.map(|(_, c)| c),
                });
            }
            println!("{line}");
        }
        let mut avg_line = format!("{:<12}", "avg (geo)");
        for algo in lineup {
            let avg = speedups_by_algo.get(&algo.name()).and_then(|v| geo_mean(v));
            avg_line.push_str(&cell(avg, 12, 2));
        }
        println!("{avg_line}");
    }

    // Table 5: absolute times of DS2 and Two-Face.
    println!("\n===== Table 5: absolute execution times (simulated seconds) =====");
    println!("{:<8} {:<12} {:>14} {:>14}", "K", "matrix", "DS2", "Two-Face");
    for k in [32usize, 128, 512] {
        for m in SuiteMatrix::ALL {
            let ds2 = entries
                .iter()
                .find(|e| e.matrix == m.short_name() && e.k == k && e.algorithm == "DS2")
                .and_then(|e| e.seconds);
            let tf = entries
                .iter()
                .find(|e| e.matrix == m.short_name() && e.k == k && e.algorithm == "Two-Face")
                .and_then(|e| e.seconds);
            println!("{:<8} {:<12} {} {}", k, m.short_name(), cell(ds2, 14, 5), cell(tf, 14, 5));
        }
    }

    // Headline numbers: Two-Face vs the best dense-shifting factor per
    // matrix, averaged, per K (paper: 1.53x / 2.11x / 2.35x).
    println!("\n===== Headline: Two-Face speedup over best-DS per matrix =====");
    for k in [32usize, 128, 512] {
        let mut ratios = Vec::new();
        for m in SuiteMatrix::ALL {
            let tf = entries
                .iter()
                .find(|e| e.matrix == m.short_name() && e.k == k && e.algorithm == "Two-Face")
                .and_then(|e| e.seconds);
            let best_ds = entries
                .iter()
                .filter(|e| e.matrix == m.short_name() && e.k == k && e.algorithm.starts_with("DS"))
                .filter_map(|e| e.seconds)
                .fold(f64::INFINITY, f64::min);
            if let Some(tf) = tf {
                if best_ds.is_finite() {
                    ratios.push(best_ds / tf);
                }
            }
        }
        println!(
            "K = {:<4}: average Two-Face speedup over best dense shifting = {}x (paper: {})",
            k,
            geo_mean(&ratios).map_or_else(|| "n/a".into(), |g| format!("{g:.2}")),
            match k {
                32 => "1.53x",
                128 => "2.11x",
                _ => "2.35x",
            }
        );
    }
    write_json("fig07_09_speedups", &entries);
}
