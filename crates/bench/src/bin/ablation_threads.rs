//! Ablation: the sync/async thread split (Table 2's 120/8/2 division).
//!
//! Thread counts scale the effective cost model: more async compute threads
//! cut `γ_A` but starve the synchronous row-panel pool. The paper fixed
//! 2 comm + 8 comp + 120 sync per 128-thread node; this sweep probes the
//! neighborhood on an async-compute-bound matrix (mawi) and a balanced one
//! (arabic).

use serde::Serialize;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_K, DEFAULT_P};
use twoface_core::{run_algorithm, Algorithm, RunOptions, TwoFaceConfig};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    async_comm_threads: usize,
    async_comp_threads: usize,
    sync_comp_threads: usize,
    is_table2_default: bool,
    seconds: f64,
}

fn main() {
    banner(
        "Ablation: sync/async thread split (Table 2)",
        format!("Two-Face at K = {DEFAULT_K}, p = {DEFAULT_P}; 128 threads per node total.")
            .as_str(),
    );
    let cost = default_cost();
    let mut cache = SuiteCache::new();
    let splits = [
        // (comm, comp, sync) summing to 130 like the paper's 2+8+120.
        (1usize, 4usize, 125usize),
        (2, 8, 120), // Table 2
        (4, 16, 110),
        (8, 32, 90),
        (16, 64, 50),
    ];
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>10} {:>12}",
        "matrix", "comm", "comp", "sync", "default?", "seconds"
    );
    for m in [SuiteMatrix::Mawi, SuiteMatrix::Arabic] {
        let problem = cache.problem(m, DEFAULT_K, DEFAULT_P).expect("suite problems are valid");
        for (comm, comp, sync) in splits {
            let config = TwoFaceConfig {
                async_comm_threads: comm,
                async_comp_threads: comp,
                sync_comp_threads: sync,
                ..Default::default()
            };
            let is_default = config == TwoFaceConfig::default();
            let report = run_algorithm(
                Algorithm::TwoFace,
                &problem,
                &cost,
                &RunOptions { compute_values: false, config, ..Default::default() },
            )
            .expect("Two-Face fits");
            println!(
                "{:<10} {:>6} {:>6} {:>6} {:>10} {:>12.6}",
                m.short_name(),
                comm,
                comp,
                sync,
                if is_default { "<- T2" } else { "" },
                report.seconds
            );
            rows.push(Row {
                matrix: m.short_name(),
                async_comm_threads: comm,
                async_comp_threads: comp,
                sync_comp_threads: sync,
                is_table2_default: is_default,
                seconds: report.seconds,
            });
        }
        println!();
    }
    println!(
        "Reading guide: the classifier re-balances for each split (it sees the\n\
         effective coefficients), so curves are flatter than a fixed plan would\n\
         give — but starving the sync pool still shows on sync-bound matrices."
    );
    write_json("ablation_threads", &rows);
}
