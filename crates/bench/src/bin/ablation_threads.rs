//! Ablation: threads, modeled and real.
//!
//! Two orthogonal knobs share the word "threads" and this sweep probes both:
//!
//! 1. **Modeled split** (Table 2's 120/8/2 division): thread counts scale
//!    the effective cost model — more async compute threads cut `γ_A` but
//!    starve the synchronous row-panel pool. The paper fixed 2 comm, 8 comp,
//!    and 120 sync per 128-thread node; this sweep probes the neighborhood
//!    on an async-compute-bound matrix (mawi) and a balanced one (arabic),
//!    and changing the split changes *simulated seconds* only.
//! 2. **Real execution workers** (`RunOptions::workers` / `TWOFACE_THREADS`):
//!    the OS threads that actually run the local kernels. Changing the count
//!    changes *host wall-clock* only — the modeled seconds and the output
//!    are bit-identical across the sweep, and this binary asserts both.

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use twoface_bench::{banner, default_cost, write_json, SuiteCache, DEFAULT_K, DEFAULT_P};
use twoface_core::{run_algorithm, Algorithm, Problem, RunOptions, TwoFaceConfig};
use twoface_matrix::gen::{webcrawl, SuiteMatrix, WebcrawlConfig};
use twoface_net::CostModel;

#[derive(Serialize)]
struct SplitRow {
    matrix: &'static str,
    async_comm_threads: usize,
    async_comp_threads: usize,
    sync_comp_threads: usize,
    is_table2_default: bool,
    seconds: f64,
}

#[derive(Serialize)]
struct WorkerRow {
    workers: usize,
    wall_seconds: f64,
    modeled_seconds: f64,
    speedup_vs_1: f64,
}

#[derive(Serialize)]
struct Output {
    modeled_split: Vec<SplitRow>,
    real_workers: Vec<WorkerRow>,
}

/// The modeled Table-2 split sweep (simulated seconds move, wall-clock is
/// irrelevant).
fn sweep_modeled_split() -> Vec<SplitRow> {
    let cost = default_cost();
    let mut cache = SuiteCache::new();
    let splits = [
        // (comm, comp, sync) summing to 130 like the paper's 2+8+120.
        (1usize, 4usize, 125usize),
        (2, 8, 120), // Table 2
        (4, 16, 110),
        (8, 32, 90),
        (16, 64, 50),
    ];
    let mut rows = Vec::new();
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>10} {:>12}",
        "matrix", "comm", "comp", "sync", "default?", "seconds"
    );
    for m in [SuiteMatrix::Mawi, SuiteMatrix::Arabic] {
        let problem = cache.problem(m, DEFAULT_K, DEFAULT_P).expect("suite problems are valid");
        for (comm, comp, sync) in splits {
            let config = TwoFaceConfig {
                async_comm_threads: comm,
                async_comp_threads: comp,
                sync_comp_threads: sync,
                ..Default::default()
            };
            let is_default = config == TwoFaceConfig::default();
            let report = run_algorithm(
                Algorithm::TwoFace,
                &problem,
                &cost,
                &RunOptions { compute_values: false, config, ..Default::default() },
            )
            .expect("Two-Face fits");
            println!(
                "{:<10} {:>6} {:>6} {:>6} {:>10} {:>12.6}",
                m.short_name(),
                comm,
                comp,
                sync,
                if is_default { "<- T2" } else { "" },
                report.seconds
            );
            rows.push(SplitRow {
                matrix: m.short_name(),
                async_comm_threads: comm,
                async_comp_threads: comp,
                sync_comp_threads: sync,
                is_table2_default: is_default,
                seconds: report.seconds,
            });
        }
        println!();
    }
    rows
}

/// The real worker sweep on the BENCH_hotpaths end-to-end workload
/// (webcrawl n = 8192, K = 32, 8 ranks): host wall-clock moves, the modeled
/// seconds and output bits must not.
fn sweep_real_workers() -> Vec<WorkerRow> {
    let a = Arc::new(webcrawl(
        &WebcrawlConfig { n: 8192, hosts: 128, per_row: 10, ..Default::default() },
        5,
    ));
    let problem = Problem::with_generated_b(a, 32, 8, 64).expect("valid problem");
    let cost = CostModel::delta_scaled();
    let run = |workers: usize| {
        let options = RunOptions { workers: Some(workers), ..Default::default() };
        // Warm once, then time the median of three full-compute runs.
        let _ = run_algorithm(Algorithm::TwoFace, &problem, &cost, &options).expect("fits");
        let mut samples = Vec::new();
        let mut last = None;
        for _ in 0..3 {
            let start = Instant::now();
            let report =
                run_algorithm(Algorithm::TwoFace, &problem, &cost, &options).expect("fits");
            samples.push(start.elapsed().as_secs_f64());
            last = Some(report);
        }
        samples.sort_by(f64::total_cmp);
        (samples[1], last.expect("three runs"))
    };
    println!("{:>8} {:>12} {:>16} {:>12}", "workers", "wall (s)", "modeled (s)", "speedup");
    let mut rows: Vec<WorkerRow> = Vec::new();
    let mut reference: Option<(f64, twoface_matrix::DenseMatrix)> = None;
    for workers in [1usize, 2, 4, 8] {
        let (wall, report) = run(workers);
        let output = report.output.expect("full compute");
        match &reference {
            None => reference = Some((report.seconds, output)),
            Some((seconds, c)) => {
                // The determinism contract, asserted where it's measured.
                assert_eq!(*seconds, report.seconds, "workers changed modeled time");
                assert_eq!(c, &output, "workers changed output bits");
            }
        }
        let base = rows.first().map_or(wall, |r| r.wall_seconds);
        let speedup = base / wall;
        println!("{workers:>8} {wall:>12.4} {:>16.6} {speedup:>11.2}x", report.seconds);
        rows.push(WorkerRow {
            workers,
            wall_seconds: wall,
            modeled_seconds: report.seconds,
            speedup_vs_1: speedup,
        });
    }
    rows
}

fn main() {
    banner(
        "Ablation: threads — modeled Table-2 split, then real workers",
        format!("Two-Face at K = {DEFAULT_K}, p = {DEFAULT_P}; 128 modeled threads per node.")
            .as_str(),
    );
    let modeled_split = sweep_modeled_split();
    println!(
        "Reading guide: the classifier re-balances for each split (it sees the\n\
         effective coefficients), so curves are flatter than a fixed plan would\n\
         give — but starving the sync pool still shows on sync-bound matrices.\n"
    );
    banner(
        "Real execution workers (TWOFACE_THREADS)",
        "webcrawl n = 8192, K = 32, p = 8, full compute; wall-clock vs modeled.",
    );
    let real_workers = sweep_real_workers();
    println!(
        "\nReading guide: workers move wall-clock only; modeled seconds and the\n\
         output are asserted bit-identical across the sweep."
    );
    write_json("ablation_threads", &Output { modeled_split, real_workers });
}
