//! Extension (§9): SpMV as the `K = 1` special case of Two-Face.
//!
//! The paper suggests Two-Face "may also be applicable to accelerate SpMV
//! ... with proper parameter tuning". At `K = 1` every per-row transfer is a
//! single scalar, so per-operation overheads (`α_A`, per-run costs) weigh
//! far more than at SpMM's K — the regime where coarse collectives are
//! hardest to beat. This harness runs the suite at `K = 1` with the standard
//! parameters and reports where the hybrid still wins.

use serde::Serialize;
use std::sync::Arc;
use twoface_bench::{banner, cell, default_cost, write_json, SuiteCache, DEFAULT_P};
use twoface_core::{run_spmv, Algorithm, RunError, RunOptions};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    ds2_seconds: Option<f64>,
    allgather_seconds: Option<f64>,
    async_fine_seconds: Option<f64>,
    two_face_seconds: Option<f64>,
    two_face_speedup_vs_ds2: Option<f64>,
}

fn main() {
    banner(
        "Extension: SpMV (K = 1) through the Two-Face machinery (§9)",
        format!("p = {DEFAULT_P}; x is a deterministic dense vector.").as_str(),
    );
    let cost = default_cost();
    let options = RunOptions::default();
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "matrix", "DS2", "Allgather", "AsyncFine", "Two-Face", "speedup"
    );
    for m in SuiteMatrix::ALL {
        let a = cache.matrix(m);
        let x: Vec<f64> = (0..a.cols()).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        let time = |algo: Algorithm| -> Option<f64> {
            match run_spmv(algo, Arc::clone(&a), &x, DEFAULT_P, m.stripe_width(), &cost, &options) {
                Ok((_, report)) => Some(report.seconds),
                Err(RunError::OutOfMemory { .. }) => None,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        let ds2 = time(Algorithm::DenseShifting { replication: 2 });
        let allgather = time(Algorithm::Allgather);
        let async_fine = time(Algorithm::AsyncFine);
        let two_face = time(Algorithm::TwoFace);
        let speedup = match (ds2, two_face) {
            (Some(d), Some(t)) => Some(d / t),
            _ => None,
        };
        println!(
            "{:<12} {} {} {} {} {}",
            m.short_name(),
            cell(ds2, 12, 6),
            cell(allgather, 12, 6),
            cell(async_fine, 12, 6),
            cell(two_face, 12, 6),
            cell(speedup, 9, 2),
        );
        rows.push(Row {
            matrix: m.short_name(),
            ds2_seconds: ds2,
            allgather_seconds: allgather,
            async_fine_seconds: async_fine,
            two_face_seconds: two_face,
            two_face_speedup_vs_ds2: speedup,
        });
    }
    write_json("extension_spmv", &rows);
}
