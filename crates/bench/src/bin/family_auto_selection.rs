//! Algorithm-family auto-selection quality: for every suite matrix, run
//! every concrete candidate, resolve [`Algorithm::Auto`], and score how
//! often the model's pick lands within 10% of the best measured simulated
//! time (the acceptance bar is ≥ 87% of the suite, enforced here).

use serde::Serialize;
use twoface_bench::{banner, cell, default_cost, write_json, SuiteCache, DEFAULT_P};
use twoface_core::{resolve_auto, run_algorithm, Algorithm, RunError, RunOptions, TwoFaceConfig};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Entry {
    matrix: &'static str,
    k: usize,
    chosen: String,
    chosen_seconds: Option<f64>,
    best: String,
    best_seconds: f64,
    /// `chosen_seconds / best_seconds`; 1.0 means Auto picked the winner.
    loss_ratio: Option<f64>,
    within_10pct: bool,
}

#[derive(Serialize)]
struct Report {
    p: usize,
    within_10pct_rate: f64,
    entries: Vec<Entry>,
}

fn main() {
    banner(
        "Algorithm-family auto-selection quality",
        format!("p = {DEFAULT_P} nodes; Auto vs the measured best over all candidates.").as_str(),
    );
    let cost = default_cost();
    let config = TwoFaceConfig::default();
    let effective = config.effective_cost(&cost);
    let options = RunOptions { compute_values: false, ..Default::default() };
    let mut cache = SuiteCache::new();
    let candidates = twoface_core::auto_candidates(DEFAULT_P);
    let mut entries: Vec<Entry> = Vec::new();

    println!(
        "{:<12} {:>4} {:<14} {:>12} {:<14} {:>12} {:>8}",
        "matrix", "K", "chosen", "chosen s", "best", "best s", "loss"
    );
    for k in [32usize, 128] {
        for m in SuiteMatrix::ALL {
            let problem = cache.problem(m, k, DEFAULT_P).expect("suite problems are valid");
            let mut measured: Vec<(Algorithm, f64)> = Vec::new();
            for &algo in &candidates {
                match run_algorithm(algo, &problem, &cost, &options) {
                    Ok(r) => measured.push((algo, r.seconds)),
                    Err(RunError::OutOfMemory { .. }) => {}
                    Err(e) => panic!("unexpected error for {algo} on {m}: {e}"),
                }
            }
            let &(best_algo, best_seconds) = measured
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one candidate fits");
            let chosen =
                resolve_auto(&problem.a, &problem.layout, k, &config, &effective).algorithm;
            let chosen_seconds = measured.iter().find(|(a, _)| *a == chosen).map(|&(_, s)| s);
            let loss_ratio = chosen_seconds.map(|s| s / best_seconds);
            let within_10pct = loss_ratio.is_some_and(|r| r <= 1.10);
            println!(
                "{:<12} {:>4} {:<14} {} {:<14} {} {:>8}",
                m.short_name(),
                k,
                chosen.name(),
                cell(chosen_seconds, 12, 5),
                best_algo.name(),
                cell(Some(best_seconds), 12, 5),
                loss_ratio.map_or_else(|| "    oom".into(), |r| format!("{r:7.3}x")),
            );
            entries.push(Entry {
                matrix: m.short_name(),
                k,
                chosen: chosen.name(),
                chosen_seconds,
                best: best_algo.name(),
                best_seconds,
                loss_ratio,
                within_10pct,
            });
        }
    }

    let hits = entries.iter().filter(|e| e.within_10pct).count();
    let rate = hits as f64 / entries.len() as f64;
    println!(
        "\nAuto within 10% of the measured best on {hits}/{} points ({:.0}%; bar: 87%)",
        entries.len(),
        rate * 100.0
    );
    assert!(
        rate >= 0.87,
        "auto-selection quality regressed below the 87% bar: {hits}/{} points",
        entries.len()
    );
    write_json("family_auto_selection", &Report { p: DEFAULT_P, within_10pct_rate: rate, entries });
}
