//! Figure 2: speedup of Async Fine over the full-replication Allgather
//! collective implementation, for K = 32 and K = 128.
//!
//! The motivating result: whether fine-grained sparsity-aware transfers or
//! coarse collectives win is input dependent — roughly half the matrices
//! prefer each. As in the paper, kmer at K = 128 has no collectives data
//! because full replication exceeds node memory.

use serde::Serialize;
use twoface_bench::{banner, cell, default_cost, write_json, CommCounters, SuiteCache, DEFAULT_P};
use twoface_core::{run_algorithm, Algorithm, RunError, RunOptions};
use twoface_matrix::gen::SuiteMatrix;

#[derive(Serialize)]
struct Row {
    matrix: &'static str,
    k: usize,
    allgather_seconds: Option<f64>,
    async_fine_seconds: Option<f64>,
    speedup_async_over_collectives: Option<f64>,
    /// Cross-rank communication counters — the collective path shows few
    /// messages moving many elements, the one-sided path the reverse.
    allgather_comm: Option<CommCounters>,
    async_fine_comm: Option<CommCounters>,
}

fn seconds(result: Result<twoface_core::ExecutionReport, RunError>) -> Option<(f64, CommCounters)> {
    match result {
        Ok(report) => Some((report.seconds, CommCounters::from_traces(&report.rank_traces))),
        Err(RunError::OutOfMemory { .. }) => None,
        Err(e) => panic!("unexpected run error: {e}"),
    }
}

fn main() {
    banner(
        "Figure 2: Async Fine vs full-replication Allgather",
        format!(
            "p = {DEFAULT_P} nodes; speedup > 1 means the sparsity-aware fine-grained\n\
             approach wins; 'OOM' marks the full-replication memory failure."
        )
        .as_str(),
    );
    let cost = default_cost();
    let options = RunOptions { compute_values: false, ..Default::default() };
    let mut cache = SuiteCache::new();
    let mut rows = Vec::new();
    for k in [32usize, 128] {
        println!("\n--- K = {k} ---");
        println!(
            "{:<12} {:>14} {:>14} {:>10}",
            "matrix", "Allgather (s)", "AsyncFine (s)", "speedup"
        );
        for m in SuiteMatrix::ALL {
            let problem = cache.problem(m, k, DEFAULT_P).expect("suite problems are valid");
            let allgather = seconds(run_algorithm(Algorithm::Allgather, &problem, &cost, &options));
            let async_fine =
                seconds(run_algorithm(Algorithm::AsyncFine, &problem, &cost, &options));
            let speedup = match (&allgather, &async_fine) {
                (Some((a, _)), Some((f, _))) => Some(a / f),
                _ => None,
            };
            println!(
                "{:<12} {} {} {}",
                m.short_name(),
                cell(allgather.map(|(s, _)| s), 14, 5),
                cell(async_fine.map(|(s, _)| s), 14, 5),
                cell(speedup, 10, 2),
            );
            rows.push(Row {
                matrix: m.short_name(),
                k,
                allgather_seconds: allgather.map(|(s, _)| s),
                async_fine_seconds: async_fine.map(|(s, _)| s),
                speedup_async_over_collectives: speedup,
                allgather_comm: allgather.map(|(_, c)| c),
                async_fine_comm: async_fine.map(|(_, c)| c),
            });
        }
        let winners = rows
            .iter()
            .filter(|r| r.k == k && r.speedup_async_over_collectives.is_some_and(|s| s > 1.0))
            .count();
        println!("(Async Fine wins on {winners} of 8 matrices at K = {k})");
    }
    write_json("fig02_async_vs_collectives", &rows);
}
