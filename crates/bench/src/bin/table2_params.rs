//! Table 2: the constant runtime parameters of Two-Face.

use serde::Serialize;
use twoface_bench::{banner, write_json};
use twoface_core::TwoFaceConfig;

#[derive(Serialize)]
struct Params {
    async_comm_threads: usize,
    async_comp_threads: usize,
    sync_comp_threads: usize,
    row_panel_height: usize,
    coalesce_distance_k32: usize,
    coalesce_distance_k128: usize,
    coalesce_distance_k512: usize,
}

fn main() {
    banner(
        "Table 2: Constant runtime parameters used in Two-Face",
        "Thread counts scale the cost model (per-rank execution is serial and\n\
         deterministic in this reproduction); the coalescing rule is (127/K)+1.",
    );
    let c = TwoFaceConfig::default();
    let params = Params {
        async_comm_threads: c.async_comm_threads,
        async_comp_threads: c.async_comp_threads,
        sync_comp_threads: c.sync_comp_threads,
        row_panel_height: c.row_panel_height,
        coalesce_distance_k32: c.max_coalesce_distance(32),
        coalesce_distance_k128: c.max_coalesce_distance(128),
        coalesce_distance_k512: c.max_coalesce_distance(512),
    };
    println!("{:<52} {:>6}", "Async Communication Threads per Node", params.async_comm_threads);
    println!("{:<52} {:>6}", "Async Computation Threads per Node", params.async_comp_threads);
    println!(
        "{:<52} {:>6}",
        "Sync/Local-Input Computation Threads per Node", params.sync_comp_threads
    );
    println!("{:<52} {:>6}", "Row Panel Height (rows)", params.row_panel_height);
    println!(
        "{:<52} {:>6} / {} / {}",
        "Max Async Coalescing Distance (K=32/128/512)",
        params.coalesce_distance_k32,
        params.coalesce_distance_k128,
        params.coalesce_distance_k512,
    );
    write_json("table2_params", &params);
}
