//! Shared plumbing for the per-figure/table benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper:
//! it prints the same rows/series the paper reports and writes a
//! machine-readable copy to `results/<name>.json`. Run them all with
//! `for b in crates/bench/src/bin/*.rs; do cargo run --release -p
//! twoface-bench --bin $(basename ${b%.rs}); done`.

use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use twoface_core::{Problem, RunError};
use twoface_matrix::gen::SuiteMatrix;
use twoface_matrix::CooMatrix;
use twoface_net::{CostModel, RankTrace};

/// The default node count of the paper's experiments.
pub const DEFAULT_P: usize = 32;

/// The default dense column count of the paper's experiments.
pub const DEFAULT_K: usize = 128;

/// The cost model all experiments use: the Delta-like machine rescaled to
/// this reproduction's matrix sizes.
pub fn default_cost() -> CostModel {
    CostModel::delta_scaled()
}

/// The directory experiment JSON lands in (`results/` under the workspace
/// root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("can create results directory");
    dir
}

fn workspace_root() -> PathBuf {
    // The bench crate lives at <root>/crates/bench.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate is two levels below the workspace root")
        .to_path_buf()
}

/// Writes an experiment result as pretty JSON to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("results serialize");
    std::fs::write(&path, json).expect("can write results file");
    println!("\n[results written to {}]", path.display());
}

/// A cache of generated suite matrices, so multi-K sweeps generate each
/// matrix once.
#[derive(Default)]
pub struct SuiteCache {
    matrices: HashMap<SuiteMatrix, Arc<CooMatrix>>,
}

impl SuiteCache {
    /// Creates an empty cache.
    pub fn new() -> SuiteCache {
        SuiteCache::default()
    }

    /// The (cached) generated matrix.
    pub fn matrix(&mut self, m: SuiteMatrix) -> Arc<CooMatrix> {
        Arc::clone(self.matrices.entry(m).or_insert_with(|| Arc::new(m.generate())))
    }

    /// A problem over `p` nodes with `k` dense columns and the matrix's
    /// Table-1 stripe width.
    pub fn problem(&mut self, m: SuiteMatrix, k: usize, p: usize) -> Result<Problem, RunError> {
        let a = self.matrix(m);
        Problem::with_generated_b(a, k, p, m.stripe_width())
    }
}

/// Communication counters distilled from one or more [`RankTrace`]s, in the
/// shape the figure/table JSON files carry. Until the observability PR these
/// counters were recorded by every run but dropped by the bench binaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CommCounters {
    /// Dense elements sent (as transfer source).
    pub elements_sent: u64,
    /// Dense elements received (as transfer destination).
    pub elements_received: u64,
    /// Communication operations initiated.
    pub messages: u64,
    /// One-sided attempts retried after a transient failure.
    pub retries: u64,
    /// One-sided operations issued.
    pub one_sided_ops: u64,
    /// Collective meets participated in.
    pub meets: u64,
}

impl CommCounters {
    /// Counters of a single rank's trace.
    pub fn from_trace(trace: &RankTrace) -> CommCounters {
        CommCounters {
            elements_sent: trace.elements_sent,
            elements_received: trace.elements_received,
            messages: trace.messages,
            retries: trace.retries,
            one_sided_ops: trace.one_sided_ops,
            meets: trace.meets,
        }
    }

    /// Counters summed across all ranks of a run.
    pub fn from_traces(traces: &[RankTrace]) -> CommCounters {
        let mut total = CommCounters::default();
        for t in traces {
            let c = CommCounters::from_trace(t);
            total.elements_sent += c.elements_sent;
            total.elements_received += c.elements_received;
            total.messages += c.messages;
            total.retries += c.retries;
            total.one_sided_ops += c.one_sided_ops;
            total.meets += c.meets;
        }
        total
    }
}

/// Geometric mean of strictly positive values (the paper's "average
/// speedup" aggregation). Returns `None` for an empty slice.
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0, "geometric mean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Formats a cell that may be a number or an out-of-memory marker.
pub fn cell(value: Option<f64>, width: usize, precision: usize) -> String {
    match value {
        Some(v) => format!("{v:>width$.precision$}"),
        None => format!("{:>width$}", "OOM"),
    }
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, detail: &str) {
    println!("==================================================================");
    println!("{title}");
    println!("{detail}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), None);
        assert!((geo_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[5.0]).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cell_formats_oom() {
        assert_eq!(cell(None, 8, 2), "     OOM");
        assert_eq!(cell(Some(1.5), 8, 2), "    1.50");
    }

    #[test]
    fn suite_cache_reuses_matrices() {
        let mut cache = SuiteCache::new();
        let a = cache.matrix(SuiteMatrix::Queen);
        let b = cache.matrix(SuiteMatrix::Queen);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
        assert!(dir.exists());
    }

    #[test]
    fn comm_counters_sum_across_ranks() {
        let mut a = RankTrace::new();
        a.elements_sent = 10;
        a.messages = 2;
        a.meets = 1;
        let mut b = RankTrace::new();
        b.elements_received = 7;
        b.retries = 3;
        b.one_sided_ops = 4;
        let total = CommCounters::from_traces(&[a.clone(), b]);
        assert_eq!(
            total,
            CommCounters {
                elements_sent: 10,
                elements_received: 7,
                messages: 2,
                retries: 3,
                one_sided_ops: 4,
                meets: 1,
            }
        );
        assert_eq!(CommCounters::from_trace(&a).elements_sent, 10);
    }
}
