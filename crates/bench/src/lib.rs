//! Shared plumbing for the per-figure/table benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper:
//! it prints the same rows/series the paper reports and writes a
//! machine-readable copy to `results/<name>.json`. Run them all with
//! `for b in crates/bench/src/bin/*.rs; do cargo run --release -p
//! twoface-bench --bin $(basename ${b%.rs}); done`.

use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use twoface_core::{Problem, RunError};
use twoface_matrix::gen::SuiteMatrix;
use twoface_matrix::CooMatrix;
use twoface_net::{CostModel, RankTrace};

/// The default node count of the paper's experiments.
pub const DEFAULT_P: usize = 32;

/// The default dense column count of the paper's experiments.
pub const DEFAULT_K: usize = 128;

/// The cost model all experiments use: the Delta-like machine rescaled to
/// this reproduction's matrix sizes.
pub fn default_cost() -> CostModel {
    CostModel::delta_scaled()
}

/// The directory experiment JSON lands in (`results/` under the workspace
/// root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("can create results directory");
    dir
}

fn workspace_root() -> PathBuf {
    // The bench crate lives at <root>/crates/bench.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate is two levels below the workspace root")
        .to_path_buf()
}

/// The canonical host disclosure attached to every report: wall-clock fields
/// are measured on a single-CPU, visibly time-shared container and carry no
/// signal; simulated seconds and communication counters are deterministic.
/// The fleet differ (`crates/fleet`) keys off this split — fields whose path
/// mentions `wall` are informational, the rest are baseline-gated.
pub const HOST_NOTE: &str = "single-CPU container (nproc = 1), visibly time-shared: wall-clock \
                             fields are noisy and informational only; simulated seconds and \
                             communication counters are deterministic and baseline-gated";

/// The version of the normalized report envelope every `results/*.json`
/// carries. Bump when the envelope itself (not a payload) changes shape.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Environment variable the fleet runner sets so reports carry the run date.
/// Standalone runs without it record `"unversioned"`; the field is
/// informational either way and never baseline-gated.
pub const BENCH_DATE_ENV: &str = "TWOFACE_BENCH_DATE";

/// The normalized envelope around every experiment payload: consistent
/// `date` / `harness` / `host_note` metadata so the fleet differ can walk
/// any report generically and classify metadata as informational. Built as
/// an explicit [`serde::Value`] tree because the vendored serde derive does
/// not support generic structs.
fn report_envelope(name: &str, data: serde::Value) -> serde::Value {
    use serde::Value;
    Value::Object(vec![
        ("schema_version".to_string(), Value::UInt(u64::from(REPORT_SCHEMA_VERSION))),
        ("name".to_string(), Value::String(name.to_string())),
        (
            "date".to_string(),
            Value::String(std::env::var(BENCH_DATE_ENV).unwrap_or_else(|_| "unversioned".into())),
        ),
        (
            "harness".to_string(),
            Value::String(format!("cargo run --release -p twoface-bench --bin {name}")),
        ),
        ("host_note".to_string(), Value::String(HOST_NOTE.to_string())),
        ("data".to_string(), data),
    ])
}

/// Writes an experiment result as pretty JSON to `results/<name>.json`,
/// wrapped in the normalized metadata envelope (`schema_version`, `name`,
/// `date`, `harness`, `host_note`, `data`).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let report = report_envelope(name, value.to_value());
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(&report).expect("results serialize");
    std::fs::write(&path, json).expect("can write results file");
    println!("\n[results written to {}]", path.display());
}

/// A cache of generated suite matrices, so multi-K sweeps generate each
/// matrix once.
#[derive(Default)]
pub struct SuiteCache {
    matrices: HashMap<SuiteMatrix, Arc<CooMatrix>>,
}

impl SuiteCache {
    /// Creates an empty cache.
    pub fn new() -> SuiteCache {
        SuiteCache::default()
    }

    /// The (cached) generated matrix.
    pub fn matrix(&mut self, m: SuiteMatrix) -> Arc<CooMatrix> {
        Arc::clone(self.matrices.entry(m).or_insert_with(|| Arc::new(m.generate())))
    }

    /// A problem over `p` nodes with `k` dense columns and the matrix's
    /// Table-1 stripe width.
    pub fn problem(&mut self, m: SuiteMatrix, k: usize, p: usize) -> Result<Problem, RunError> {
        let a = self.matrix(m);
        Problem::with_generated_b(a, k, p, m.stripe_width())
    }
}

/// Communication counters distilled from one or more [`RankTrace`]s, in the
/// shape the figure/table JSON files carry. Until the observability PR these
/// counters were recorded by every run but dropped by the bench binaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CommCounters {
    /// Dense elements sent (as transfer source).
    pub elements_sent: u64,
    /// Dense elements received (as transfer destination).
    pub elements_received: u64,
    /// Communication operations initiated.
    pub messages: u64,
    /// One-sided attempts retried after a transient failure.
    pub retries: u64,
    /// One-sided operations issued.
    pub one_sided_ops: u64,
    /// Collective meets participated in.
    pub meets: u64,
}

impl CommCounters {
    /// Counters of a single rank's trace.
    pub fn from_trace(trace: &RankTrace) -> CommCounters {
        CommCounters {
            elements_sent: trace.elements_sent,
            elements_received: trace.elements_received,
            messages: trace.messages,
            retries: trace.retries,
            one_sided_ops: trace.one_sided_ops,
            meets: trace.meets,
        }
    }

    /// Counters summed across all ranks of a run.
    pub fn from_traces(traces: &[RankTrace]) -> CommCounters {
        let mut total = CommCounters::default();
        for t in traces {
            let c = CommCounters::from_trace(t);
            total.elements_sent += c.elements_sent;
            total.elements_received += c.elements_received;
            total.messages += c.messages;
            total.retries += c.retries;
            total.one_sided_ops += c.one_sided_ops;
            total.meets += c.meets;
        }
        total
    }
}

/// Geometric mean of strictly positive values (the paper's "average
/// speedup" aggregation).
///
/// Returns `None` for an empty slice and for any sample that is zero,
/// negative, or non-finite (a warning names the offending sample): one bad
/// sample would otherwise poison the whole aggregate with `-inf`/NaN, which
/// serializes as `null` and silently corrupts the report JSON.
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut log_sum = 0.0;
    for v in values {
        if !v.is_finite() || *v <= 0.0 {
            eprintln!(
                "warning: geo_mean over {} samples saw non-positive or non-finite sample {v}; \
                 reporting no mean instead of a poisoned one",
                values.len()
            );
            return None;
        }
        log_sum += v.ln();
    }
    Some((log_sum / values.len() as f64).exp())
}

/// Formats a cell that may be a number or an out-of-memory marker.
pub fn cell(value: Option<f64>, width: usize, precision: usize) -> String {
    match value {
        Some(v) => format!("{v:>width$.precision$}"),
        None => format!("{:>width$}", "OOM"),
    }
}

/// Prints the standard experiment banner.
pub fn banner(title: &str, detail: &str) {
    println!("==================================================================");
    println!("{title}");
    println!("{detail}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), None);
        assert!((geo_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[5.0]).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_rejects_non_positive_and_non_finite_samples() {
        // One bad sample must yield None, not -inf/NaN poisoning the report.
        assert_eq!(geo_mean(&[2.0, 0.0, 8.0]), None);
        assert_eq!(geo_mean(&[-1.0]), None);
        assert_eq!(geo_mean(&[1.0, f64::NAN]), None);
        assert_eq!(geo_mean(&[1.0, f64::INFINITY]), None);
        assert_eq!(geo_mean(&[f64::NEG_INFINITY]), None);
        // Valid samples around the bad ones still work on their own.
        assert!(geo_mean(&[2.0, 8.0]).is_some());
    }

    #[test]
    fn cell_formats_oom() {
        assert_eq!(cell(None, 8, 2), "     OOM");
        assert_eq!(cell(Some(1.5), 8, 2), "    1.50");
    }

    #[test]
    fn suite_cache_reuses_matrices() {
        let mut cache = SuiteCache::new();
        let a = cache.matrix(SuiteMatrix::Queen);
        let b = cache.matrix(SuiteMatrix::Queen);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
        assert!(dir.exists());
    }

    #[test]
    fn comm_counters_sum_across_ranks() {
        let mut a = RankTrace::new();
        a.elements_sent = 10;
        a.messages = 2;
        a.meets = 1;
        let mut b = RankTrace::new();
        b.elements_received = 7;
        b.retries = 3;
        b.one_sided_ops = 4;
        let total = CommCounters::from_traces(&[a.clone(), b]);
        assert_eq!(
            total,
            CommCounters {
                elements_sent: 10,
                elements_received: 7,
                messages: 2,
                retries: 3,
                one_sided_ops: 4,
                meets: 1,
            }
        );
        assert_eq!(CommCounters::from_trace(&a).elements_sent, 10);
    }
}
