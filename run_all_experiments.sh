#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations and
# extensions. Output lands in results/*.json and on stdout.
set -euo pipefail
cd "$(dirname "$0")"
bins=(
  table1_matrices table2_params table3_calibration table4_algorithms
  fig02_async_vs_collectives fig07_09_speedups fig10_breakdown
  fig11_scaling table6_preprocessing fig12_sensitivity
  ablation_coalescing ablation_stripe_width ablation_threads
  ablation_panel_height ablation_classifier ablation_async_layout
  extension_sddmm extension_spmv
)
for bin in "${bins[@]}"; do
  echo
  echo "################ $bin ################"
  cargo run --release -p twoface-bench --bin "$bin"
done
