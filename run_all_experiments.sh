#!/usr/bin/env bash
# Thin wrapper kept for muscle memory: the experiment matrix is owned by
# the twoface-fleet driver (crates/fleet), which runs every bench bin and
# chaos sweep as a subprocess with a timeout and one retry, writes
# results/fleet_report.json, and diffs every results/*.json and
# BENCH_*.json report against the committed baselines under baselines/.
#
#   ./run_all_experiments.sh                 # full matrix + baseline check
#   ./run_all_experiments.sh --filter fast   # the CI subset
#   ./run_all_experiments.sh --check         # diff-only regression gate
#   ./run_all_experiments.sh --bless         # accept current reports
set -euo pipefail
cd "$(dirname "$0")"
exec cargo run --release -p twoface-fleet -- "$@"
