#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the ablations,
# extensions, and the serving-layer benchmark. Output lands in
# results/*.json and on stdout.
#
# Every bin runs even if an earlier one fails; the script exits non-zero
# if ANY bin failed, listing the failures at the end (so a later success
# can never mask an earlier failure, and one failure doesn't hide the
# results of the rest of the suite).
set -uo pipefail
cd "$(dirname "$0")"
bins=(
  table1_matrices table2_params table3_calibration table4_algorithms
  fig02_async_vs_collectives fig07_09_speedups fig10_breakdown
  fig11_scaling table6_preprocessing fig12_sensitivity
  ablation_coalescing ablation_stripe_width ablation_threads
  ablation_panel_height ablation_classifier ablation_async_layout
  extension_sddmm extension_spmv
  serve_throughput trace_summary
)
failed=()
for bin in "${bins[@]}"; do
  echo
  echo "################ $bin ################"
  if ! cargo run --release -p twoface-bench --bin "$bin"; then
    echo "!!! $bin exited non-zero"
    failed+=("$bin")
  fi
done
echo
if ((${#failed[@]})); then
  echo "FAILED bins: ${failed[*]}"
  exit 1
fi
echo "all ${#bins[@]} experiment bins completed successfully"
