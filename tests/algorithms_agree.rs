//! Cross-crate integration: every distributed algorithm computes the same
//! `C = A × B` as the serial reference, across all matrix structure classes,
//! node counts, and `K` values.

use std::sync::Arc;
use twoface_core::{run_algorithm, Algorithm, Problem, RunOptions};
use twoface_matrix::gen::{
    banded, erdos_renyi, hub_traffic, hypersparse, rmat, uniform_random, webcrawl, BandedConfig,
    HubConfig, HypersparseConfig, RmatConfig, WebcrawlConfig,
};
use twoface_matrix::CooMatrix;
use twoface_net::CostModel;

const ALGORITHMS: [Algorithm; 10] = Algorithm::FIGURE7_LINEUP;

/// Runs every algorithm on the problem with validation enabled, so a wrong
/// output fails inside the runner with a max-difference diagnostic.
fn check_all(a: CooMatrix, k: usize, p: usize, stripe_width: usize) {
    let problem = Problem::with_generated_b(Arc::new(a), k, p, stripe_width)
        .expect("test problems are well-formed");
    // A permissive memory model so validation exercises every algorithm.
    let cost = CostModel { memory_per_node: usize::MAX, ..CostModel::delta_scaled() };
    let options = RunOptions { validate: true, ..Default::default() };
    for algo in ALGORITHMS {
        if let Algorithm::DenseShifting { replication } | Algorithm::OneFiveD { replication } = algo
        {
            if replication > p {
                continue;
            }
        }
        let report = run_algorithm(algo, &problem, &cost, &options)
            .unwrap_or_else(|e| panic!("{algo} failed: {e}"));
        assert!(report.seconds > 0.0, "{algo} reported zero time");
        assert!(report.output.is_some(), "{algo} produced no output");
    }
}

#[test]
fn banded_matrix() {
    let a = banded(&BandedConfig { n: 512, bandwidth: 24, per_row: 8, escape_fraction: 0.02 }, 11);
    check_all(a, 16, 8, 16);
}

#[test]
fn power_law_matrix() {
    let a = rmat(&RmatConfig { scale: 9, edge_factor: 8, ..Default::default() }, 12);
    check_all(a, 8, 8, 32);
}

#[test]
fn webcrawl_matrix() {
    let a = webcrawl(&WebcrawlConfig { n: 600, hosts: 20, per_row: 6, ..Default::default() }, 13);
    check_all(a, 4, 6, 25);
}

#[test]
fn hub_matrix() {
    let a = hub_traffic(&HubConfig { n: 640, nnz: 4000, hubs: 8, ..Default::default() }, 14);
    check_all(a, 8, 8, 20);
}

#[test]
fn hypersparse_matrix() {
    let a = hypersparse(&HypersparseConfig { n: 2048, per_row: 2.0, ..Default::default() }, 15);
    check_all(a, 4, 8, 64);
}

#[test]
fn uniform_matrix_with_ragged_layout() {
    // 7 nodes and a stripe width that doesn't divide the blocks: exercises
    // ragged megatiles and uneven row ranges everywhere.
    let a = erdos_renyi(443, 443, 3000, 16);
    check_all(a, 8, 7, 19);
}

#[test]
fn exact_degree_matrix_small_k() {
    let a = uniform_random(128, 128, 5, 17);
    check_all(a, 1, 4, 8); // K = 1: SpMV as a special case of SpMM
}

#[test]
fn two_nodes_minimum_distribution() {
    let a = erdos_renyi(64, 64, 400, 18);
    check_all(a, 8, 2, 8);
}

#[test]
fn single_node_degenerates_to_local() {
    let a = erdos_renyi(64, 64, 300, 19);
    let problem = Problem::with_generated_b(Arc::new(a), 8, 1, 8).expect("valid");
    let cost = CostModel::delta_scaled();
    let options = RunOptions { validate: true, ..Default::default() };
    for algo in [
        Algorithm::TwoFace,
        Algorithm::Allgather,
        Algorithm::AsyncFine,
        Algorithm::DenseShifting { replication: 1 },
    ] {
        let report = run_algorithm(algo, &problem, &cost, &options).expect("p=1 runs");
        // Everything is local-input: no elements should move.
        assert_eq!(report.elements_received, 0, "{algo} moved data on a single node");
    }
}

#[test]
fn dense_shifting_with_awkward_replication_factors() {
    // c that does not divide p: the last shift step wraps and must not
    // double-process blocks.
    let a = erdos_renyi(210, 210, 2500, 23);
    let problem = Problem::with_generated_b(Arc::new(a), 8, 7, 10).expect("valid");
    let cost = CostModel::delta_scaled();
    let options = RunOptions { validate: true, ..Default::default() };
    for c in [1usize, 2, 3, 5, 7] {
        run_algorithm(Algorithm::DenseShifting { replication: c }, &problem, &cost, &options)
            .unwrap_or_else(|e| panic!("DS{c} on 7 nodes failed: {e}"));
    }
}

#[test]
fn report_invariants_hold() {
    let a = erdos_renyi(128, 128, 1200, 24);
    let problem = Problem::with_generated_b(Arc::new(a), 8, 4, 16).expect("valid");
    let cost = CostModel::delta_scaled();
    let report = run_algorithm(
        Algorithm::TwoFace,
        &problem,
        &cost,
        &RunOptions { compute_values: false, ..Default::default() },
    )
    .unwrap();
    assert_eq!(report.rank_seconds.len(), 4);
    assert_eq!(report.rank_breakdowns.len(), 4);
    // The reported time is the max rank finish, achieved by critical_rank.
    let max = report.rank_seconds.iter().cloned().fold(0.0, f64::max);
    assert_eq!(report.seconds, max);
    assert_eq!(report.rank_seconds[report.critical_rank], max);
    // Each rank's finish is bounded by the sum of its components (lanes
    // overlap, so finish <= busy total; equality only if one lane is idle).
    for (seconds, b) in report.rank_seconds.iter().zip(&report.rank_breakdowns) {
        assert!(*seconds <= b.total() + 1e-12);
    }
}

#[test]
fn deterministic_across_runs() {
    let a = rmat(&RmatConfig { scale: 8, edge_factor: 6, ..Default::default() }, 20);
    let problem = Problem::with_generated_b(Arc::new(a), 8, 4, 16).expect("valid");
    let cost = CostModel::delta_scaled();
    let options = RunOptions { compute_values: false, ..Default::default() };
    for algo in ALGORITHMS {
        if let Algorithm::DenseShifting { replication } = algo {
            if replication > 4 {
                continue;
            }
        }
        let t1 = run_algorithm(algo, &problem, &cost, &options).unwrap().seconds;
        let t2 = run_algorithm(algo, &problem, &cost, &options).unwrap().seconds;
        assert_eq!(t1, t2, "{algo} is not deterministic");
    }
}

#[test]
fn reports_account_communication() {
    let a = erdos_renyi(256, 256, 4000, 21);
    let problem = Problem::with_generated_b(Arc::new(a), 16, 4, 16).expect("valid");
    let cost = CostModel::delta_scaled();
    let options = RunOptions { compute_values: false, ..Default::default() };
    // Allgather must move exactly (p-1) blocks to each rank.
    let report = run_algorithm(Algorithm::Allgather, &problem, &cost, &options).unwrap();
    let expected: u64 = (0..4)
        .map(|r| {
            let others = 256 - problem.layout.col_range(r).len();
            (others * 16) as u64
        })
        .sum();
    assert_eq!(report.elements_received, expected);
    // Two-Face must move strictly less than full replication on a matrix
    // with any locality at all.
    let tf = run_algorithm(Algorithm::TwoFace, &problem, &cost, &options).unwrap();
    assert!(tf.elements_received <= report.elements_received);
}
