//! Differential tests: the streamed (out-of-core) pipeline versus the
//! resident runner.
//!
//! The streamed pipeline's correctness contract is *bit-identity* at every
//! scale where the resident path also fits: same output `C` (exact `f64`
//! equality, not a tolerance), same simulated seconds, same per-lane
//! breakdowns, same communication volumes, same memory verdicts. These
//! tests enforce the contract across generator families, chunk sizes,
//! `K` widths, and the row-major ablation.

use std::sync::Arc;
use twoface_core::{
    run_algorithm, run_twoface_streamed, Algorithm, Problem, RunError, RunOptions, StreamOptions,
    TwoFaceConfig,
};
use twoface_matrix::gen::{assemble, ErdosChunks, HubChunks, RmatChunks, TripletSource};
use twoface_matrix::gen::{HubConfig, RmatConfig};
use twoface_net::{CostModel, Observability, OpKind};

/// Runs the resident Two-Face path on the assembled source and the streamed
/// path on a fresh source, then checks the full bit-identity contract.
fn assert_streamed_matches_resident(
    make_source: impl Fn() -> Box<dyn TripletSource>,
    k: usize,
    p: usize,
    stripe_width: usize,
    stream_options: &StreamOptions,
) {
    let cost = CostModel::delta_scaled();
    let a = Arc::new(assemble(&mut *make_source()));
    let problem = Problem::with_generated_b(Arc::clone(&a), k, p, stripe_width)
        .expect("test layouts are feasible");
    let resident_options = RunOptions {
        validate: true,
        config: stream_options.config,
        coefficients: stream_options.coefficients,
        classifier: stream_options.classifier,
        workers: stream_options.workers,
        ..Default::default()
    };
    let resident = run_algorithm(Algorithm::TwoFace, &problem, &cost, &resident_options)
        .expect("resident run fits");

    let streamed =
        run_twoface_streamed(&mut *make_source(), k, p, stripe_width, &cost, stream_options)
            .expect("streamed run fits");

    assert_eq!(streamed.realized_nnz, a.nnz(), "normalization must agree");
    let sr = &streamed.report;
    assert_eq!(sr.output, resident.output, "output C must be bit-identical");
    assert_eq!(sr.seconds, resident.seconds, "simulated seconds must be identical");
    assert_eq!(sr.critical_rank, resident.critical_rank);
    assert_eq!(sr.critical_breakdown, resident.critical_breakdown);
    assert_eq!(sr.rank_breakdowns, resident.rank_breakdowns);
    assert_eq!(sr.rank_seconds, resident.rank_seconds);
    assert_eq!(sr.elements_received, resident.elements_received);
    assert_eq!(sr.messages, resident.messages);
    assert_eq!(sr.mean_multicast_recipients, resident.mean_multicast_recipients);
    assert_eq!(sr.memory_peak_bytes, resident.memory_peak_bytes);
}

#[test]
fn rmat_streamed_is_bit_identical() {
    let config = RmatConfig { scale: 10, edge_factor: 8, ..Default::default() };
    assert_streamed_matches_resident(
        || Box::new(RmatChunks::new(&config, 17)),
        8,
        4,
        64,
        &StreamOptions::default(),
    );
}

#[test]
fn rmat_streamed_is_bit_identical_at_k32() {
    let config = RmatConfig { scale: 9, edge_factor: 8, ..Default::default() };
    assert_streamed_matches_resident(
        || Box::new(RmatChunks::new(&config, 3)),
        32,
        4,
        32,
        &StreamOptions::default(),
    );
}

#[test]
fn hub_streamed_is_bit_identical() {
    let config = HubConfig { n: 2048, nnz: 1 << 13, ..Default::default() };
    assert_streamed_matches_resident(
        || Box::new(HubChunks::new(&config, 11)),
        8,
        4,
        64,
        &StreamOptions::default(),
    );
}

#[test]
fn erdos_streamed_is_chunk_size_invariant() {
    // A deliberately tiny spill chunk forces many pass-1 iterations; the
    // result must not change.
    for chunk_nnz in [64usize, 1 << 20] {
        assert_streamed_matches_resident(
            || Box::new(ErdosChunks::new(1024, 1024, 20_000, 5)),
            8,
            8,
            32,
            &StreamOptions { chunk_nnz, ..Default::default() },
        );
    }
}

#[test]
fn row_major_ablation_streams_identically() {
    let config =
        TwoFaceConfig { async_layout: twoface_core::AsyncLayout::RowMajor, ..Default::default() };
    let rmat = RmatConfig { scale: 9, edge_factor: 8, ..Default::default() };
    assert_streamed_matches_resident(
        || Box::new(RmatChunks::new(&rmat, 29)),
        8,
        4,
        32,
        &StreamOptions { config, ..Default::default() },
    );
}

#[test]
fn streamed_run_respects_a_generous_budget() {
    let mut source = ErdosChunks::new(1024, 1024, 20_000, 5);
    let run = run_twoface_streamed(
        &mut source,
        8,
        4,
        32,
        &CostModel::delta_scaled(),
        &StreamOptions { memory_budget: Some(1 << 30), ..Default::default() },
    )
    .expect("1 GiB is ample for 20k nonzeros");
    assert!(run.estimated_host_bytes <= 1 << 30);
    assert!(run.spilled_bytes > 0, "the pipeline actually spilled");
    assert!(run.peak_shard_bytes > 0);
    assert!(run.report.output.is_some());
}

#[test]
fn resident_runner_enforces_the_host_budget() {
    let a = Arc::new(assemble(&mut ErdosChunks::new(512, 512, 8_000, 2)));
    let problem = Problem::with_generated_b(a, 8, 4, 32).expect("feasible");
    let options = RunOptions { memory_budget: Some(1024), ..Default::default() };
    let err = run_algorithm(Algorithm::TwoFace, &problem, &CostModel::delta_scaled(), &options)
        .expect_err("1 KiB cannot stage a resident run");
    match err {
        RunError::HostBudgetExceeded { required, budget } => {
            assert_eq!(budget, 1024);
            assert!(required > budget);
        }
        other => panic!("expected HostBudgetExceeded, got {other:?}"),
    }
    // An ample budget must not change the run at all.
    let ample = RunOptions { memory_budget: Some(1 << 34), ..Default::default() };
    let gated = run_algorithm(Algorithm::TwoFace, &problem, &CostModel::delta_scaled(), &ample)
        .expect("ample budget passes");
    let ungated = run_algorithm(
        Algorithm::TwoFace,
        &problem,
        &CostModel::delta_scaled(),
        &RunOptions::default(),
    )
    .expect("no budget");
    assert_eq!(gated.output, ungated.output);
    assert_eq!(gated.seconds, ungated.seconds);
}

/// The streamed pipeline's telemetry contract (ISSUE 9): turning
/// observability on changes no gated result bit, the five host passes each
/// leave a span, spill counters reconcile with the bytes the pipeline put
/// on disk, and the high-water gauge respects the declared budget.
#[test]
fn streamed_telemetry_is_bit_identical_and_reconciles_with_disk() {
    let cost = CostModel::delta_scaled();
    let make = || ErdosChunks::new(1024, 1024, 20_000, 5);
    let budget = 1usize << 30;
    let base = StreamOptions { memory_budget: Some(budget), ..Default::default() };
    let off = run_twoface_streamed(&mut make(), 8, 4, 32, &cost, &base).expect("fits");
    let on = run_twoface_streamed(
        &mut make(),
        8,
        4,
        32,
        &cost,
        &StreamOptions { observability: Observability::full(), ..base },
    )
    .expect("fits");

    // Bit-identity: telemetry must not move a single gated field.
    assert_eq!(on.report.output, off.report.output);
    assert_eq!(on.report.seconds, off.report.seconds);
    assert_eq!(on.report.rank_breakdowns, off.report.rank_breakdowns);
    assert_eq!(on.report.elements_received, off.report.elements_received);
    assert_eq!(on.spilled_bytes, off.spilled_bytes);
    assert_eq!(on.estimated_host_bytes, off.estimated_host_bytes);
    assert!(off.report.rank_events.iter().all(Vec::is_empty), "off means off");
    assert_eq!(off.report.metrics.counter("stream.passes"), 0);

    // Pass spans: all five passes, in order, as sim-time-zero instants on
    // rank 0 (wall stamping is off, so the stream stays deterministic).
    let driver: Vec<_> = on.report.rank_events[0]
        .iter()
        .filter(|e| matches!(e.kind, OpKind::HostPass | OpKind::Spill | OpKind::Gauge))
        .collect();
    let passes: Vec<usize> =
        driver.iter().filter(|e| e.kind == OpKind::HostPass).map(|e| e.peers[0]).collect();
    assert_eq!(passes, vec![1, 2, 3, 4, 5], "every pass leaves exactly one span");
    for e in &driver {
        assert_eq!((e.start_seconds, e.end_seconds), (0.0, 0.0), "driver events are instants");
        assert_eq!(e.wall_nanos, None, "no wall stamps unless requested");
    }

    // Spill counters reconcile with the bytes actually written to disk
    // (every write event's `elements` is a fresh stat of the file).
    let written: u64 =
        driver.iter().filter(|e| e.kind == OpKind::Spill && e.initiator).map(|e| e.elements).sum();
    assert_eq!(written, on.spilled_bytes as u64, "spill-write events match bytes on disk");
    assert_eq!(on.report.metrics.counter("stream.spill_bytes_written"), written);
    assert_eq!(
        on.report.metrics.counter("stream.shards_written"),
        driver.iter().filter(|e| e.kind == OpKind::Spill && e.initiator).count() as u64
    );
    assert!(on.report.metrics.counter("stream.spill_bytes_read") > 0, "passes re-read shards");

    // The high-water gauge never exceeds the declared budget, and the
    // recorded headroom is exactly the remainder.
    let hwm = on.report.metrics.counter("stream.host_bytes_high_water");
    assert_eq!(hwm, on.estimated_host_bytes as u64);
    assert!(hwm <= budget as u64, "gauge {hwm} exceeds budget {budget}");
    let headroom = on
        .report
        .metrics
        .histogram("stream.budget_headroom_bytes")
        .expect("budget declared, so headroom is sampled");
    assert_eq!(headroom.count(), 1);
    assert_eq!(headroom.max(), Some(budget as u64 - hwm));
}

#[test]
fn structural_streamed_run_skips_values_but_keeps_clocks() {
    let cost = CostModel::delta_scaled();
    let make = || ErdosChunks::new(1024, 1024, 20_000, 5);
    let full = run_twoface_streamed(&mut make(), 8, 4, 32, &cost, &StreamOptions::default())
        .expect("fits");
    let structural = run_twoface_streamed(
        &mut make(),
        8,
        4,
        32,
        &cost,
        &StreamOptions { compute_values: false, ..Default::default() },
    )
    .expect("fits");
    assert!(structural.report.output.is_none());
    assert_eq!(structural.report.seconds, full.report.seconds);
    assert_eq!(structural.report.rank_breakdowns, full.report.rank_breakdowns);
    assert_eq!(structural.report.elements_received, full.report.elements_received);
}
