//! The algorithm-family differential harness: every member of
//! [`Algorithm::FAMILY`] against the serial reference, **bitwise**, across a
//! synthetic matrix set × cluster shapes (including non-square 2D grids) ×
//! `K` × real worker counts — plus cross-algorithm bit-identity.
//!
//! Bitwise comparison across algorithms with different summation orders is
//! only meaningful when every partial sum is exact, so the operands are
//! small integers: all intermediate values are integer-valued and far below
//! 2^53, making floating-point addition associative in exact arithmetic.
//! Any nonzero difference is therefore a real divergence (wrong row fetched,
//! block double-counted, partial misrouted), never roundoff.

use std::sync::Arc;
use twoface_core::{reference_spmm, run_algorithm, Algorithm, Problem, RunOptions};
use twoface_matrix::gen::{
    banded, erdos_renyi, hub_traffic, rmat, BandedConfig, HubConfig, RmatConfig,
};
use twoface_matrix::{CooMatrix, DenseMatrix, Triplet};
use twoface_net::CostModel;

/// Rewrites a generated matrix's values to small integers so all partial
/// sums are exactly representable (see the module docs).
fn integerize(a: CooMatrix) -> CooMatrix {
    let (rows, cols) = (a.rows(), a.cols());
    let triplets: Vec<Triplet> = a
        .iter()
        .enumerate()
        .map(|(i, (r, c, _))| {
            let sign = if (i / 7) % 2 == 0 { 1.0 } else { -1.0 };
            Triplet::new(r, c, ((i % 7) + 1) as f64 * sign)
        })
        .collect();
    CooMatrix::from_triplets(rows, cols, triplets).expect("same shape, same entries")
}

/// A small-integer dense operand (values in `[-4, 4]`).
fn integer_b(rows: usize, k: usize) -> DenseMatrix {
    DenseMatrix::from_fn(rows, k, |i, j| {
        ((i.wrapping_mul(31) + j.wrapping_mul(17)) % 9) as f64 - 4.0
    })
}

/// The synthetic matrix set: one per structure class the paper's suite
/// spans (uniform, banded/local, power-law, hub-dominated).
fn matrix_set() -> Vec<(&'static str, CooMatrix)> {
    vec![
        ("erdos", erdos_renyi(384, 384, 3000, 21)),
        (
            "banded",
            banded(&BandedConfig { n: 384, bandwidth: 16, per_row: 6, escape_fraction: 0.03 }, 22),
        ),
        ("rmat", rmat(&RmatConfig { scale: 8, edge_factor: 6, ..Default::default() }, 23)),
        ("hub", hub_traffic(&HubConfig { n: 360, nnz: 2600, hubs: 6, ..Default::default() }, 24)),
    ]
}

/// Cluster shapes: square grid (4 → 2×2, 16 → 4×4), non-square 2D grids
/// (6 → 2×3, 8 → 2×4), and the degenerate prime grid (7 → 1×7).
const SHAPES: [usize; 5] = [4, 6, 7, 8, 16];

/// Runs one algorithm bit-exactly and returns its flat output.
fn run_exact(algorithm: Algorithm, problem: &Problem, workers: usize) -> Vec<f64> {
    let cost = CostModel { memory_per_node: usize::MAX, ..CostModel::delta_scaled() };
    let options = RunOptions { compute_values: true, workers: Some(workers), ..Default::default() };
    let report = run_algorithm(algorithm, problem, &cost, &options)
        .unwrap_or_else(|e| panic!("{algorithm} failed: {e}"));
    report.output.expect("compute_values produces output").into_vec()
}

fn family_for(p: usize) -> Vec<Algorithm> {
    Algorithm::FAMILY
        .into_iter()
        .filter(|a| match a {
            Algorithm::DenseShifting { replication } | Algorithm::OneFiveD { replication } => {
                *replication <= p
            }
            _ => true,
        })
        .collect()
}

/// The tentpole check: every family member is bitwise-equal to the serial
/// oracle at every (matrix, shape, K, workers) point, which also makes all
/// members bitwise-equal to each other.
#[test]
fn every_algorithm_matches_the_oracle_bitwise() {
    for (name, a) in matrix_set() {
        let a = Arc::new(integerize(a));
        for p in SHAPES {
            for k in [8usize, 32, 128] {
                let b = Arc::new(integer_b(a.cols(), k));
                let problem = Problem::new(Arc::clone(&a), Arc::clone(&b), p, 24)
                    .expect("test problems are well-formed");
                let oracle = reference_spmm(&a, &b).into_vec();
                for workers in [1usize, 4] {
                    for algorithm in family_for(p) {
                        let got = run_exact(algorithm, &problem, workers);
                        assert_eq!(got.len(), oracle.len());
                        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
                            assert!(
                                g.to_bits() == o.to_bits(),
                                "{algorithm} on {name} (p={p}, K={k}, workers={workers}): \
                                 element {i} is {g}, oracle says {o}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Float-domain cross-algorithm behavior: algorithms that feed each output
/// row to a *single* kernel call (Allgather, AsyncCoarse) are bitwise
/// interchangeable even on inexact sums; the per-block algorithms (Slicing,
/// SUMMA, 1.5D) regroup the row sum per block, so they agree to roundoff
/// (1e-9) but not bitwise — the integer-domain test above is where their
/// bit-identity is pinned.
#[test]
fn float_domain_grouping_contract() {
    let a = Arc::new(erdos_renyi(256, 256, 2200, 31));
    for p in [6usize, 8] {
        let problem = Problem::with_generated_b(Arc::clone(&a), 16, p, 24).expect("well-formed");
        let baseline = run_exact(Algorithm::Allgather, &problem, 1);
        let same_order = run_exact(Algorithm::AsyncCoarse, &problem, 4);
        assert!(
            same_order.iter().zip(&baseline).all(|(g, b)| g.to_bits() == b.to_bits()),
            "AsyncCoarse diverges from Allgather on the float domain (p={p})"
        );
        for algorithm in [Algorithm::Slicing, Algorithm::Summa] {
            let got = run_exact(algorithm, &problem, 4);
            let max_diff =
                got.iter().zip(&baseline).map(|(g, b)| (g - b).abs()).fold(0.0f64, f64::max);
            assert!(max_diff < 1e-9, "{algorithm} off by {max_diff} on the float domain (p={p})");
        }
    }
}

/// `Algorithm::Auto` runs end to end, reports its resolved choice, and its
/// output matches the oracle bitwise like any concrete member.
#[test]
fn auto_resolves_and_matches_the_oracle() {
    let a = Arc::new(integerize(erdos_renyi(384, 384, 3000, 41)));
    for p in [4usize, 7] {
        let b = Arc::new(integer_b(a.cols(), 32));
        let problem = Problem::new(Arc::clone(&a), Arc::clone(&b), p, 24).expect("well-formed");
        let cost = CostModel { memory_per_node: usize::MAX, ..CostModel::delta_scaled() };
        let options = RunOptions { compute_values: true, validate: true, ..Default::default() };
        let report = run_algorithm(Algorithm::Auto, &problem, &cost, &options)
            .unwrap_or_else(|e| panic!("Auto failed on p={p}: {e}"));
        assert!(
            report.algorithm.starts_with("Auto(") && report.algorithm.ends_with(')'),
            "report names the resolved choice, got {:?}",
            report.algorithm
        );
        let oracle = reference_spmm(&a, &b).into_vec();
        let got = report.output.expect("computed").into_vec();
        assert!(
            got.iter().zip(&oracle).all(|(g, o)| g.to_bits() == o.to_bits()),
            "Auto's resolved algorithm diverges from the oracle (p={p})"
        );
    }
}

/// Worker counts never change a single bit (the per-algorithm determinism
/// contract), checked pairwise at a non-square shape.
#[test]
fn worker_count_never_changes_output_bits() {
    let a = Arc::new(rmat(&RmatConfig { scale: 8, edge_factor: 6, ..Default::default() }, 51));
    let problem = Problem::with_generated_b(Arc::clone(&a), 32, 6, 24).expect("well-formed");
    for algorithm in family_for(6) {
        let w1 = run_exact(algorithm, &problem, 1);
        let w4 = run_exact(algorithm, &problem, 4);
        assert!(
            w1.iter().zip(&w4).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{algorithm}: workers=1 vs workers=4 outputs differ"
        );
    }
}

/// Degenerate shapes: a single rank (every algorithm collapses to the local
/// kernel) and K = 1.
#[test]
fn degenerate_shapes_still_match() {
    let a = Arc::new(integerize(erdos_renyi(64, 64, 500, 61)));
    for (p, k) in [(1usize, 8usize), (4, 1)] {
        let b = Arc::new(integer_b(a.cols(), k));
        let problem = Problem::new(Arc::clone(&a), Arc::clone(&b), p, 16).expect("well-formed");
        let oracle = reference_spmm(&a, &b).into_vec();
        for algorithm in family_for(p) {
            let got = run_exact(algorithm, &problem, 2);
            assert!(
                got.iter().zip(&oracle).all(|(g, o)| g.to_bits() == o.to_bits()),
                "{algorithm} wrong at degenerate (p={p}, K={k})"
            );
        }
    }
}
