//! Chaos differential suite: seeded fault plans crossed with algorithms.
//!
//! Every recovered run must be *bit-identical* to the fault-free run of the
//! same algorithm — fault injection may cost time but never correctness.
//! Runs that exhaust a retry budget or trip a stall timeout must surface a
//! typed error instead of hanging or silently corrupting `C`.
//!
//! The seed base is `CHAOS_SEED_BASE` (decimal) when set, so CI can fuzz new
//! seeds nightly; failures always print the exact seed to replay.

use std::sync::Arc;
use twoface_core::{run_algorithm, Algorithm, Problem, RunError, RunOptions};
use twoface_matrix::gen::{webcrawl, WebcrawlConfig};
use twoface_net::{CostModel, FaultKind, FaultPlan, NetError, RetryPolicy};

/// Deterministic default; override with `CHAOS_SEED_BASE=<n>` to fuzz.
fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC4A05)
}

/// A webcrawl fixture with both dense stripes (multicasts) and sparse
/// scatter (one-sided gets), so every lane of every algorithm is exercised.
fn fixture() -> Problem {
    fixture_p(4)
}

/// The same fixture over `p` ranks — non-power-of-two counts give SUMMA and
/// 1.5D non-trivial (non-square, short-team) geometries.
fn fixture_p(p: usize) -> Problem {
    let a = webcrawl(
        &WebcrawlConfig { n: 512, hosts: 16, per_row: 6, intra_host: 0.7, ..Default::default() },
        31,
    );
    Problem::with_generated_b(Arc::new(a), 8, p, 32).expect("fixture is valid")
}

fn faulted_options(plan: FaultPlan) -> RunOptions {
    RunOptions { fault_plan: Some(plan), ..Default::default() }
}

/// A named fault-plan severity: label plus seeded constructor.
type Severity = (&'static str, fn(u64) -> FaultPlan);

/// The heart of the suite: seeds x plan severities x algorithms. Recovered
/// runs must match the fault-free output bitwise; aborts must be typed.
#[test]
fn recovered_runs_are_bit_identical_across_seeds() {
    let base = seed_base();
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let algorithms = [
        Algorithm::TwoFace,
        Algorithm::Allgather,
        Algorithm::OneFiveD { replication: 2 },
        Algorithm::Summa,
        Algorithm::Slicing,
    ];
    let severities: [Severity; 2] = [("light", FaultPlan::light), ("heavy", FaultPlan::heavy)];

    let mut recovered = 0usize;
    let mut cases = 0usize;
    for algorithm in algorithms {
        let clean = run_algorithm(algorithm, &problem, &cost, &RunOptions::default())
            .expect("fault-free run succeeds");
        let clean_c = clean.output.as_ref().expect("fault-free output");
        for round in 0..15u64 {
            let seed = base.wrapping_add(round);
            for (name, make_plan) in severities {
                cases += 1;
                let report = match run_algorithm(
                    algorithm,
                    &problem,
                    &cost,
                    &faulted_options(make_plan(seed)),
                ) {
                    Ok(report) => report,
                    // An exhausted retry budget is a legal outcome (the
                    // heavy plan leaves ~6e-8 abort probability per op);
                    // anything else is a bug.
                    Err(RunError::TransferTimeout { .. }) => continue,
                    Err(other) => panic!(
                        "{algorithm} {name} seed {seed} (CHAOS_SEED_BASE={base}): \
                             unexpected error {other}"
                    ),
                };
                recovered += 1;
                let c = report.output.as_ref().expect("recovered output");
                assert_eq!(
                    c, clean_c,
                    "{algorithm} {name} seed {seed} (CHAOS_SEED_BASE={base}): \
                     recovered output differs from fault-free output"
                );
                if !make_plan(seed).is_faultless() {
                    assert!(
                        report.seconds >= clean.seconds,
                        "{algorithm} {name} seed {seed}: faults made the run faster \
                         ({} < {})",
                        report.seconds,
                        clean.seconds
                    );
                }
            }
        }
    }
    assert!(cases >= 50, "suite shrank below the 50-case floor: {cases}");
    assert!(recovered >= 50, "expected at least 50 recovered cases, got {recovered}/{cases}");
}

/// Injected-fault counts in the trace must equal what the plan predicts:
/// the plan's pure decision functions are the test's oracle.
#[test]
fn trace_fault_counts_replay_the_plan() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let plan = FaultPlan::heavy(seed_base());
    let report = run_algorithm(Algorithm::TwoFace, &problem, &cost, &faulted_options(plan.clone()))
        .expect("heavy plan recovers on this fixture");

    assert!(report.faults_injected > 0, "heavy plan injected nothing");
    for (rank, trace) in report.rank_traces.iter().enumerate() {
        let expected_failures: u64 = (0..trace.one_sided_ops)
            .map(|op| u64::from(plan.injected_get_failures(rank, op)))
            .sum();
        assert_eq!(
            trace.fault_count(FaultKind::GetFailure),
            expected_failures,
            "rank {rank}: recorded get failures disagree with the plan"
        );
        assert_eq!(trace.retries, expected_failures, "rank {rank}: every failure was retried");
        let expected_spikes: u64 = (0..trace.one_sided_ops)
            .filter(|&op| plan.latency_spike(rank, op).is_some())
            .count() as u64;
        assert_eq!(
            trace.fault_count(FaultKind::LatencySpike),
            expected_spikes,
            "rank {rank}: recorded spikes disagree with the plan"
        );
        let expected_jitters: u64 =
            (0..trace.meets).filter(|&meet| plan.meet_jitter(rank, meet) > 0.0).count() as u64;
        assert_eq!(
            trace.fault_count(FaultKind::MeetJitter),
            expected_jitters,
            "rank {rank}: recorded jitter events disagree with the plan"
        );
    }
}

/// The same seed must reproduce the same faulted execution exactly — times,
/// traces, and output.
#[test]
fn faulted_runs_are_deterministic() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let plan = FaultPlan::heavy(seed_base().wrapping_add(7));
    let a = run_algorithm(Algorithm::TwoFace, &problem, &cost, &faulted_options(plan.clone()))
        .expect("recovers");
    let b = run_algorithm(Algorithm::TwoFace, &problem, &cost, &faulted_options(plan))
        .expect("recovers");
    assert_eq!(a.seconds, b.seconds);
    assert_eq!(a.rank_seconds, b.rank_seconds);
    assert_eq!(a.rank_traces, b.rank_traces);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.output, b.output);
}

/// A plan whose failure rate exceeds the retry budget yields a typed
/// `TransferTimeout` carrying the exhausted attempt count — never a hang,
/// never a partial output.
#[test]
fn exhausted_retry_budget_is_a_typed_error() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let plan = FaultPlan::seeded(seed_base())
        .with_get_failure_rate(1.0)
        .with_retry(RetryPolicy { max_attempts: 3, ..Default::default() });
    let err = run_algorithm(Algorithm::AsyncFine, &problem, &cost, &faulted_options(plan))
        .expect_err("every get fails forever");
    match &err {
        RunError::TransferTimeout { source, .. } => match source {
            NetError::TransferTimeout { attempts, .. } => assert_eq!(*attempts, 3),
            other => panic!("wrong source: {other}"),
        },
        other => panic!("expected TransferTimeout, got {other}"),
    }
    let text = err.to_string();
    assert!(text.contains('s'), "Display should carry units: {text}");
}

/// A rank stalled past the plan's timeout aborts the collective with a
/// typed `RankStalled` naming the straggler.
#[test]
fn stalled_rank_is_a_typed_error_naming_the_straggler() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let plan = FaultPlan::seeded(seed_base()).with_slow_rank(1, 5.0).with_stall_timeout(1.0);
    let err = run_algorithm(Algorithm::Allgather, &problem, &cost, &faulted_options(plan))
        .expect_err("rank 1 stalls past the timeout");
    match &err {
        RunError::RankStalled { source, .. } => match source {
            NetError::RankStalled { straggler, stalled_seconds, timeout_seconds, .. } => {
                assert_eq!(*straggler, 1);
                assert!(stalled_seconds > timeout_seconds);
            }
            other => panic!("wrong source: {other}"),
        },
        other => panic!("expected RankStalled, got {other}"),
    }
}

/// Fault recovery must be visible in the Figure-10 breakdown: retries add a
/// Recovery share and the faulted total exceeds the fault-free total.
#[test]
fn recovery_costs_shift_the_breakdown() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let clean = run_algorithm(Algorithm::TwoFace, &problem, &cost, &RunOptions::default())
        .expect("fault-free run succeeds");
    // The fixture issues few one-sided ops, so a fuzzed seed base may inject
    // zero get failures; scan forward for a seed whose heavy plan actually
    // forces a retry (each seed misses with probability well under a half).
    let base = seed_base();
    let faulted = (0..32u64)
        .filter_map(|i| {
            let report = run_algorithm(
                Algorithm::TwoFace,
                &problem,
                &cost,
                &faulted_options(FaultPlan::heavy(base.wrapping_add(i))),
            )
            .ok()?;
            let retried: u64 = report.rank_traces.iter().map(|t| t.retries).sum();
            (retried > 0).then_some(report)
        })
        .next()
        .unwrap_or_else(|| {
            panic!("no heavy plan in seeds {base}..{base}+32 injected a retried get failure")
        });

    assert_eq!(clean.mean_breakdown.recovery, 0.0, "fault-free runs charge no recovery");
    assert!(
        faulted.mean_breakdown.recovery > 0.0,
        "retry backoff must appear as Recovery in the breakdown"
    );
    assert!(
        faulted.mean_breakdown.total() > clean.mean_breakdown.total(),
        "faults must lengthen the mean breakdown: {} <= {}",
        faulted.mean_breakdown.total(),
        clean.mean_breakdown.total()
    );
    assert!(faulted.seconds > clean.seconds, "faults must lengthen the critical path");
}

/// Slicing's one-sided path under fault injection: every injected get
/// failure is retried (trace replays the plan exactly), retry backoff is
/// charged as Recovery, and the recovered output stays bit-identical — the
/// LogGP-consistent recovery contract of `win_rget_rows`.
#[test]
fn slicing_retries_are_loggp_consistent() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let clean = run_algorithm(Algorithm::Slicing, &problem, &cost, &RunOptions::default())
        .expect("fault-free slicing succeeds");
    // Scan for a seed whose heavy plan actually hits one of slicing's gets.
    let base = seed_base();
    let faulted = (0..32u64)
        .filter_map(|i| {
            let plan = FaultPlan::heavy(base.wrapping_add(i));
            let report =
                run_algorithm(Algorithm::Slicing, &problem, &cost, &faulted_options(plan.clone()))
                    .ok()?;
            let retried: u64 = report.rank_traces.iter().map(|t| t.retries).sum();
            (retried > 0).then_some((plan, report))
        })
        .next();
    let Some((plan, report)) = faulted else {
        panic!("no heavy plan in seeds {base}..{base}+32 hit a slicing get");
    };
    for (rank, trace) in report.rank_traces.iter().enumerate() {
        let expected: u64 = (0..trace.one_sided_ops)
            .map(|op| u64::from(plan.injected_get_failures(rank, op)))
            .sum();
        assert_eq!(
            trace.fault_count(FaultKind::GetFailure),
            expected,
            "rank {rank}: slicing's recorded get failures disagree with the plan"
        );
        assert_eq!(trace.retries, expected, "rank {rank}: every failure retried exactly once");
    }
    assert!(report.mean_breakdown.recovery > 0.0, "retry backoff must be charged as Recovery");
    assert!(report.seconds > clean.seconds, "failed transfers still occupied the async lane");
    assert_eq!(report.output, clean.output, "recovery must never change a bit of C");
}

/// A rank stalled past the timeout inside SUMMA's subgroup multicasts
/// aborts the whole run with a typed `RankStalled` naming the straggler —
/// including on ranks in *other* grid columns that never share a multicast
/// group with it. Completion of this test is itself the no-hang check.
#[test]
fn summa_subgroup_stall_fails_symmetrically() {
    let cost = CostModel::delta_scaled();
    // p = 6 → a 2 × 3 grid: rank 1 sits in one grid column; ranks in the
    // other columns only ever meet it through the row-team reduce.
    let problem = fixture_p(6);
    for algorithm in [Algorithm::Summa, Algorithm::OneFiveD { replication: 2 }] {
        let plan = FaultPlan::seeded(seed_base()).with_slow_rank(1, 5.0).with_stall_timeout(1.0);
        let err = run_algorithm(algorithm, &problem, &cost, &faulted_options(plan))
            .expect_err("rank 1 stalls past the timeout");
        match &err {
            RunError::RankStalled { source, .. } => match source {
                NetError::RankStalled { straggler, stalled_seconds, timeout_seconds, .. } => {
                    assert_eq!(*straggler, 1, "{algorithm}: wrong straggler named");
                    assert!(stalled_seconds > timeout_seconds);
                }
                other => panic!("{algorithm}: wrong source: {other}"),
            },
            other => panic!("{algorithm}: expected RankStalled, got {other}"),
        }
    }
}
