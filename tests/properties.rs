//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use std::sync::Arc;
use twoface_core::{coalesce_rows, run_algorithm, runs_to_rows, Algorithm, Problem, RunOptions};
use twoface_matrix::{CooMatrix, DenseMatrix, Triplet};
use twoface_net::CostModel;
use twoface_partition::{
    classify_node, NodeProfile, OneDimLayout, PartitionPlan, PlanOptions, StripeClass,
};
use twoface_partition::ModelCoefficients;

/// Strategy: a sparse matrix as (rows, cols, triplets).
fn arb_matrix() -> impl Strategy<Value = CooMatrix> {
    (2usize..40, 2usize..40).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            (0..rows, 0..cols, -4.0f64..4.0),
            0..120,
        )
        .prop_map(move |triplets| {
            CooMatrix::from_triplets(rows, cols, triplets).expect("in bounds by construction")
        })
    })
}

/// Strategy: strictly ascending row id lists for the coalescer.
fn arb_ascending_rows() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::btree_set(0usize..500, 0..40)
        .prop_map(|set| set.into_iter().collect())
}

proptest! {
    #[test]
    fn coo_csr_round_trip(m in arb_matrix()) {
        prop_assert_eq!(m.to_csr().to_coo(), m.clone());
    }

    #[test]
    fn coo_csc_round_trip(m in arb_matrix()) {
        prop_assert_eq!(m.to_csc().to_coo(), m.clone());
    }

    #[test]
    fn transpose_is_involution(m in arb_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m.clone());
    }

    #[test]
    fn market_io_round_trip(m in arb_matrix()) {
        let mut buf = Vec::new();
        twoface_matrix::io::write_market(&mut buf, &m).expect("writes");
        let back = twoface_matrix::io::read_market(buf.as_slice()).expect("parses");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn binary_io_round_trip(m in arb_matrix()) {
        let mut buf = Vec::new();
        twoface_matrix::io::write_binary(&mut buf, &m).expect("writes");
        let back = twoface_matrix::io::read_binary(buf.as_slice()).expect("parses");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn csr_spmm_matches_reference(m in arb_matrix(), k in 1usize..6) {
        let b = DenseMatrix::from_fn(m.cols(), k, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let via_csr = m.to_csr().spmm(&b);
        let reference = twoface_core::reference_spmm(&m, &b);
        prop_assert!(via_csr.approx_eq(&reference, 1e-9));
    }

    #[test]
    fn coalescer_covers_exactly_with_bounded_padding(
        rows in arb_ascending_rows(),
        distance in 1usize..20,
    ) {
        let (runs, padding) = coalesce_rows(&rows, distance);
        let transferred = runs_to_rows(&runs);
        // Every needed row covered, sizes consistent.
        for r in &rows {
            prop_assert!(transferred.contains(r));
        }
        prop_assert_eq!(transferred.len(), rows.len() + padding);
        // Padding per merge is at most (distance - 1); merges < rows.len().
        if !rows.is_empty() {
            prop_assert!(padding <= (distance - 1) * (rows.len() - 1));
        }
        // Runs are sorted, non-overlapping, and gaps between runs exceed the
        // distance (otherwise they would have merged).
        for w in runs.windows(2) {
            let prev_end = w[0].0 + w[0].1 - 1;
            prop_assert!(w[1].0 > prev_end);
            prop_assert!(w[1].0 - prev_end > distance);
        }
    }

    #[test]
    fn larger_distance_never_increases_run_count(
        rows in arb_ascending_rows(),
        distance in 1usize..10,
    ) {
        let (runs_small, _) = coalesce_rows(&rows, distance);
        let (runs_large, _) = coalesce_rows(&rows, distance + 5);
        prop_assert!(runs_large.len() <= runs_small.len());
    }

    #[test]
    fn partition_plan_conserves_nonzeros(
        m in arb_matrix(),
        p in 1usize..6,
        w in 1usize..12,
    ) {
        let p = p.min(m.rows()).min(m.cols()).max(1);
        let layout = OneDimLayout::new(m.rows(), m.cols(), p, w);
        let plan = PartitionPlan::build(
            &m,
            layout,
            &ModelCoefficients::table3(),
            4,
            PlanOptions::default(),
        );
        let (l, s, a) = plan.nnz_totals();
        prop_assert_eq!(l + s + a, m.nnz());
    }

    #[test]
    fn classifier_respects_the_budget_inequality(
        m in arb_matrix(),
        w in 1usize..12,
    ) {
        let p = 3usize.min(m.rows()).min(m.cols()).max(1);
        let layout = OneDimLayout::new(m.rows(), m.cols(), p, w);
        let coeffs = ModelCoefficients::table3();
        let k = 8;
        for rank in 0..p {
            let profile = NodeProfile::build(&m, &layout, rank);
            let c = classify_node(&profile, &layout, &coeffs, k);
            // Σ z_i over async stripes <= Σ sync-cost over all remote
            // stripes (the greedy budget, §4.2).
            let budget: f64 = profile
                .remote_stripes(&layout)
                .map(|s| coeffs.sync_stripe_cost(layout.stripe_cols(s.stripe).len(), k))
                .sum();
            let spent: f64 = profile
                .remote_stripes(&layout)
                .filter(|s| c.class_of(s.stripe) == Some(StripeClass::Async))
                .map(|s| {
                    coeffs.v_term(s.rows_needed(), s.nnz, k)
                        + coeffs.u_term(layout.stripe_cols(s.stripe).len(), k)
                })
                .sum();
            prop_assert!(spent <= budget + 1e-12, "spent {spent} > budget {budget}");
        }
    }

    #[test]
    fn twoface_validates_on_arbitrary_matrices(m in arb_matrix()) {
        let p = 3usize.min(m.rows()).min(m.cols()).max(1);
        let problem = Problem::with_generated_b(Arc::new(m), 4, p, 5).expect("valid");
        let cost = CostModel::delta_scaled();
        let report = run_algorithm(
            Algorithm::TwoFace,
            &problem,
            &cost,
            &RunOptions { validate: true, ..Default::default() },
        );
        prop_assert!(report.is_ok(), "{:?}", report.err());
    }

    #[test]
    fn dense_matrix_add_assign_is_commutative_on_integers(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        let a = DenseMatrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 7 + seed as usize) % 13) as f64);
        let b = DenseMatrix::from_fn(rows, cols, |i, j| ((i * 17 + j * 5 + seed as usize) % 11) as f64);
        let mut ab = a.clone();
        ab.add_assign(&b);
        let mut ba = b.clone();
        ba.add_assign(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn triplet_ordering_matches_row_major(r1 in 0usize..50, c1 in 0usize..50, r2 in 0usize..50, c2 in 0usize..50) {
        let m = CooMatrix::from_triplets(
            50,
            50,
            vec![Triplet::new(r1, c1, 1.0), Triplet::new(r2, c2, 1.0)],
        ).expect("in bounds");
        let t = m.triplets();
        if t.len() == 2 {
            prop_assert!((t[0].row, t[0].col) < (t[1].row, t[1].col));
        }
    }
}
