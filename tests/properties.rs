//! Property-based tests over the core data structures and invariants.
//!
//! Each property is exercised over many randomly generated cases from a
//! fixed-seed [`StdRng`], so failures are reproducible: the failing case's
//! construction is a pure function of the case index printed in the
//! assertion message.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;
use twoface_core::sampling::{run_sampled_twoface, EdgeSampler};
use twoface_core::{
    coalesce_rows, run_algorithm, runs_to_rows, Algorithm, AsyncLayout, Problem, RunOptions,
    TwoFaceConfig,
};
use twoface_matrix::{CooMatrix, DenseMatrix, Triplet};
use twoface_net::{CostModel, FaultPlan, PhaseClass, RetryPolicy};
use twoface_partition::{
    classify_node, ModelCoefficients, NodeProfile, OneDimLayout, PartitionPlan, PlanOptions,
    StripeClass,
};

/// Number of random cases per property.
const CASES: usize = 64;

/// A random sparse matrix with 2–39 rows/cols and up to 120 draws.
fn random_matrix(rng: &mut StdRng) -> CooMatrix {
    let rows = rng.gen_range(2usize..40);
    let cols = rng.gen_range(2usize..40);
    let n = rng.gen_range(0usize..120);
    let triplets: Vec<(usize, usize, f64)> = (0..n)
        .map(|_| (rng.gen_range(0..rows), rng.gen_range(0..cols), rng.gen_range(-4.0f64..4.0)))
        .collect();
    CooMatrix::from_triplets(rows, cols, triplets).expect("in bounds by construction")
}

/// A strictly ascending list of row ids below 500, up to 40 long.
fn random_ascending_rows(rng: &mut StdRng) -> Vec<usize> {
    let n = rng.gen_range(0usize..40);
    let set: BTreeSet<usize> = (0..n).map(|_| rng.gen_range(0usize..500)).collect();
    set.into_iter().collect()
}

#[test]
fn coo_csr_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC5_01);
    for case in 0..CASES {
        let m = random_matrix(&mut rng);
        assert_eq!(m.to_csr().to_coo(), m, "case {case}");
    }
}

#[test]
fn coo_csc_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC5_02);
    for case in 0..CASES {
        let m = random_matrix(&mut rng);
        assert_eq!(m.to_csc().to_coo(), m, "case {case}");
    }
}

#[test]
fn transpose_is_involution() {
    let mut rng = StdRng::seed_from_u64(0xC5_03);
    for case in 0..CASES {
        let m = random_matrix(&mut rng);
        assert_eq!(m.transpose().transpose(), m, "case {case}");
    }
}

#[test]
fn market_io_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC5_04);
    for case in 0..CASES {
        let m = random_matrix(&mut rng);
        let mut buf = Vec::new();
        twoface_matrix::io::write_market(&mut buf, &m).expect("writes");
        let back = twoface_matrix::io::read_market(buf.as_slice()).expect("parses");
        assert_eq!(back, m, "case {case}");
    }
}

#[test]
fn binary_io_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC5_05);
    for case in 0..CASES {
        let m = random_matrix(&mut rng);
        let mut buf = Vec::new();
        twoface_matrix::io::write_binary(&mut buf, &m).expect("writes");
        let back = twoface_matrix::io::read_binary(buf.as_slice()).expect("parses");
        assert_eq!(back, m, "case {case}");
    }
}

#[test]
fn csr_spmm_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xC5_06);
    for case in 0..CASES {
        let m = random_matrix(&mut rng);
        let k = rng.gen_range(1usize..6);
        let b = DenseMatrix::from_fn(m.cols(), k, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let via_csr = m.to_csr().spmm(&b);
        let reference = twoface_core::reference_spmm(&m, &b);
        assert!(via_csr.approx_eq(&reference, 1e-9), "case {case}");
    }
}

#[test]
fn coalescer_covers_exactly_with_bounded_padding() {
    let mut rng = StdRng::seed_from_u64(0xC5_07);
    for case in 0..CASES {
        let rows = random_ascending_rows(&mut rng);
        let distance = rng.gen_range(1usize..20);
        let (runs, padding) = coalesce_rows(&rows, distance);
        let transferred = runs_to_rows(&runs);
        // Every needed row covered, sizes consistent.
        for r in &rows {
            assert!(transferred.contains(r), "case {case}: row {r} dropped");
        }
        assert_eq!(transferred.len(), rows.len() + padding, "case {case}");
        // Padding per merge is at most (distance - 1); merges < rows.len().
        if !rows.is_empty() {
            assert!(padding <= (distance - 1) * (rows.len() - 1), "case {case}");
        }
        // Runs are sorted, non-overlapping, and gaps between runs exceed the
        // distance (otherwise they would have merged).
        for w in runs.windows(2) {
            let prev_end = w[0].0 + w[0].1 - 1;
            assert!(w[1].0 > prev_end, "case {case}");
            assert!(w[1].0 - prev_end > distance, "case {case}");
        }
    }
}

#[test]
fn larger_distance_never_increases_run_count() {
    let mut rng = StdRng::seed_from_u64(0xC5_08);
    for case in 0..CASES {
        let rows = random_ascending_rows(&mut rng);
        let distance = rng.gen_range(1usize..10);
        let (runs_small, _) = coalesce_rows(&rows, distance);
        let (runs_large, _) = coalesce_rows(&rows, distance + 5);
        assert!(runs_large.len() <= runs_small.len(), "case {case}");
    }
}

#[test]
fn partition_plan_conserves_nonzeros() {
    let mut rng = StdRng::seed_from_u64(0xC5_09);
    for case in 0..CASES {
        let m = random_matrix(&mut rng);
        let p = rng.gen_range(1usize..6).min(m.rows()).min(m.cols()).max(1);
        let w = rng.gen_range(1usize..12);
        let layout = OneDimLayout::new(m.rows(), m.cols(), p, w);
        let plan = PartitionPlan::build(
            &m,
            layout,
            &ModelCoefficients::table3(),
            4,
            PlanOptions::default(),
        );
        let (l, s, a) = plan.nnz_totals();
        assert_eq!(l + s + a, m.nnz(), "case {case}");
    }
}

#[test]
fn classifier_respects_the_budget_inequality() {
    let mut rng = StdRng::seed_from_u64(0xC5_0A);
    for case in 0..CASES {
        let m = random_matrix(&mut rng);
        let w = rng.gen_range(1usize..12);
        let p = 3usize.min(m.rows()).min(m.cols()).max(1);
        let layout = OneDimLayout::new(m.rows(), m.cols(), p, w);
        let coeffs = ModelCoefficients::table3();
        let k = 8;
        for rank in 0..p {
            let profile = NodeProfile::build(&m, &layout, rank);
            let c = classify_node(&profile, &layout, &coeffs, k);
            // Σ z_i over async stripes <= Σ sync-cost over all remote
            // stripes (the greedy budget, §4.2).
            let budget: f64 = profile
                .remote_stripes(&layout)
                .map(|s| coeffs.sync_stripe_cost(layout.stripe_cols(s.stripe).len(), k))
                .sum();
            let spent: f64 = profile
                .remote_stripes(&layout)
                .filter(|s| c.class_of(s.stripe) == Some(StripeClass::Async))
                .map(|s| {
                    coeffs.v_term(s.rows_needed(), s.nnz, k)
                        + coeffs.u_term(layout.stripe_cols(s.stripe).len(), k)
                })
                .sum();
            assert!(
                spent <= budget + 1e-12,
                "case {case} rank {rank}: spent {spent} > budget {budget}"
            );
        }
    }
}

#[test]
fn twoface_validates_on_arbitrary_matrices() {
    let mut rng = StdRng::seed_from_u64(0xC5_0B);
    for case in 0..24 {
        let m = random_matrix(&mut rng);
        let p = 3usize.min(m.rows()).min(m.cols()).max(1);
        let problem = Problem::with_generated_b(Arc::new(m), 4, p, 5).expect("valid");
        let cost = CostModel::delta_scaled();
        let report = run_algorithm(
            Algorithm::TwoFace,
            &problem,
            &cost,
            &RunOptions { validate: true, ..Default::default() },
        );
        assert!(report.is_ok(), "case {case}: {:?}", report.err());
    }
}

/// §5.4's sketch, as a property: for arbitrary matrices and keep
/// probabilities, a masked Two-Face run must agree with a serial SpMM over
/// the materialized masked matrix — under both async stripe layouts.
#[test]
fn masked_run_matches_serial_reference_under_both_layouts() {
    let mut rng = StdRng::seed_from_u64(0xC5_0C);
    for case in 0..12 {
        let m = random_matrix(&mut rng);
        let p = 3usize.min(m.rows()).min(m.cols()).max(1);
        let problem = Problem::with_generated_b(Arc::new(m), 4, p, 5).expect("valid");
        let cost = CostModel::delta_scaled();
        let keep = rng.gen_range(0.2f64..1.0);
        let mask = EdgeSampler::new(keep, 1 + case as u64).mask(case as u64);
        for layout in [AsyncLayout::ColumnMajor, AsyncLayout::RowMajor] {
            let options = RunOptions {
                validate: true,
                config: TwoFaceConfig { async_layout: layout, ..Default::default() },
                ..Default::default()
            };
            let coeffs = ModelCoefficients::from(&cost);
            let plan = Arc::new(twoface_core::prepare_plan(&problem, &coeffs, &cost));
            let report = run_sampled_twoface(&problem, plan, mask, &cost, &options);
            assert!(
                report.is_ok(),
                "case {case} layout {layout:?} keep {keep}: {:?}",
                report.err()
            );
        }
    }
}

#[test]
fn dense_matrix_add_assign_is_commutative_on_integers() {
    let mut rng = StdRng::seed_from_u64(0xC5_0D);
    for case in 0..CASES {
        let rows = rng.gen_range(1usize..8);
        let cols = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..1000) as usize;
        let a = DenseMatrix::from_fn(rows, cols, |i, j| ((i * 31 + j * 7 + seed) % 13) as f64);
        let b = DenseMatrix::from_fn(rows, cols, |i, j| ((i * 17 + j * 5 + seed) % 11) as f64);
        let mut ab = a.clone();
        ab.add_assign(&b);
        let mut ba = b.clone();
        ba.add_assign(&a);
        assert_eq!(ab, ba, "case {case}");
    }
}

/// Fault injection only ever adds simulated time: for arbitrary matrices
/// and recoverable plans, the faulted run's total and every per-rank
/// per-class total dominate the fault-free run's.
#[test]
fn faults_are_monotone_in_simulated_time() {
    let mut rng = StdRng::seed_from_u64(0xC5_0F);
    for case in 0..16 {
        let m = random_matrix(&mut rng);
        let p = 3usize.min(m.rows()).min(m.cols()).max(1);
        let problem = Problem::with_generated_b(Arc::new(m), 4, p, 5).expect("valid");
        let cost = CostModel::delta_scaled();
        // Recoverable by construction: moderate failure rate, deep retry
        // budget, no stall timeout.
        let plan = FaultPlan::seeded(0x600D + case as u64)
            .with_get_failure_rate(rng.gen_range(0.0..0.3))
            .with_latency_spikes(rng.gen_range(0.0..0.2), rng.gen_range(0.0..1e-5))
            .with_meet_jitter(rng.gen_range(0.0..2e-6))
            .with_retry(RetryPolicy { max_attempts: 12, ..Default::default() });
        let clean = run_algorithm(Algorithm::TwoFace, &problem, &cost, &RunOptions::default())
            .expect("fault-free run succeeds");
        let faulted = run_algorithm(
            Algorithm::TwoFace,
            &problem,
            &cost,
            &RunOptions { fault_plan: Some(plan), ..Default::default() },
        )
        .unwrap_or_else(|e| panic!("case {case}: recoverable plan aborted: {e}"));
        assert!(
            faulted.seconds >= clean.seconds,
            "case {case}: faults shortened the run: {} < {}",
            faulted.seconds,
            clean.seconds
        );
        for (rank, (f, c)) in faulted.rank_traces.iter().zip(&clean.rank_traces).enumerate() {
            for class in PhaseClass::ALL {
                let tolerance = 1e-12 * c.seconds(class).abs();
                assert!(
                    f.seconds(class) >= c.seconds(class) - tolerance,
                    "case {case} rank {rank} {}: faulted {} < fault-free {}",
                    class.label(),
                    f.seconds(class),
                    c.seconds(class)
                );
            }
        }
    }
}

/// A fault plan with every rate at zero is indistinguishable from no plan
/// at all: the timeline, traces, and output reproduce bit-for-bit.
#[test]
fn quiescent_plans_reproduce_the_fault_free_run_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xC5_10);
    for case in 0..12 {
        let m = random_matrix(&mut rng);
        let p = 3usize.min(m.rows()).min(m.cols()).max(1);
        let problem = Problem::with_generated_b(Arc::new(m), 4, p, 5).expect("valid");
        let cost = CostModel::delta_scaled();
        let plan = FaultPlan::quiescent(rng.gen());
        assert!(plan.is_faultless(), "quiescent plans inject nothing");
        let clean = run_algorithm(Algorithm::TwoFace, &problem, &cost, &RunOptions::default())
            .expect("fault-free run succeeds");
        let quiet = run_algorithm(
            Algorithm::TwoFace,
            &problem,
            &cost,
            &RunOptions { fault_plan: Some(plan), ..Default::default() },
        )
        .expect("quiescent run succeeds");
        assert_eq!(quiet.seconds, clean.seconds, "case {case}");
        assert_eq!(quiet.rank_seconds, clean.rank_seconds, "case {case}");
        assert_eq!(quiet.rank_traces, clean.rank_traces, "case {case}");
        assert_eq!(quiet.output, clean.output, "case {case}");
        assert_eq!(quiet.faults_injected, 0, "case {case}");
    }
}

#[test]
fn triplet_ordering_matches_row_major() {
    let mut rng = StdRng::seed_from_u64(0xC5_0E);
    for case in 0..CASES {
        let (r1, c1, r2, c2) = (
            rng.gen_range(0usize..50),
            rng.gen_range(0usize..50),
            rng.gen_range(0usize..50),
            rng.gen_range(0usize..50),
        );
        let m = CooMatrix::from_triplets(
            50,
            50,
            vec![Triplet::new(r1, c1, 1.0), Triplet::new(r2, c2, 1.0)],
        )
        .expect("in bounds");
        let t = m.triplets();
        if t.len() == 2 {
            assert!((t[0].row, t[0].col) < (t[1].row, t[1].col), "case {case}");
        }
    }
}
