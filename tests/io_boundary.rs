//! I/O round-trips at the `u32` index boundary, and chunked-reader
//! equivalence.
//!
//! The compact (small-index) layouts narrow coordinates to `u32` — but only
//! behind explicit, checked construction. The file formats themselves are
//! wide (`u64` binary fields, decimal text): coordinates at and beyond
//! `2^32` must survive a round-trip exactly, and every narrowing path must
//! reject them rather than silently truncate.

use std::io::Read;
use twoface_matrix::io::{read_binary, read_market, write_binary, write_market};
use twoface_matrix::{
    fits_small_index, CooMatrix, CsrMatrix, SmallTriplet, Triplet, SMALL_INDEX_LIMIT,
};

/// A matrix whose column space crosses the `u32` boundary: indices at
/// `2^32 - 1` (the largest representable small index), `2^32`, and beyond.
fn boundary_matrix() -> CooMatrix {
    let cols = SMALL_INDEX_LIMIT + 10;
    CooMatrix::from_triplets(
        4,
        cols,
        vec![
            (0, 0, 1.5),
            (1, SMALL_INDEX_LIMIT - 1, -2.25), // u32::MAX: still small-representable
            (2, SMALL_INDEX_LIMIT, 4.125),     // 2^32: first wide-only index
            (3, cols - 1, -8.0),
        ],
    )
    .expect("shape admits the indices")
}

#[test]
fn binary_round_trips_above_u32_exactly() {
    let m = boundary_matrix();
    let mut buf = Vec::new();
    write_binary(&mut buf, &m).expect("write");
    let back = read_binary(buf.as_slice()).expect("read");
    assert_eq!(back, m, "binary round-trip must be exact at 2^32-boundary columns");
    assert_eq!(back.triplets()[2].col, SMALL_INDEX_LIMIT);
}

#[test]
fn market_round_trips_above_u32_exactly() {
    let m = boundary_matrix();
    let mut buf = Vec::new();
    write_market(&mut buf, &m).expect("write");
    let back = read_market(buf.as_slice()).expect("read");
    assert_eq!(back, m, "market round-trip must be exact at 2^32-boundary columns");
    assert_eq!(back.triplets()[3].col, SMALL_INDEX_LIMIT + 9);
}

#[test]
fn narrowing_rejects_wide_indices_explicitly() {
    // The small-entry constructor refuses, never wraps.
    assert!(SmallTriplet::try_new(0, SMALL_INDEX_LIMIT - 1, 1.0).is_some());
    assert!(SmallTriplet::try_new(0, SMALL_INDEX_LIMIT, 1.0).is_none());
    assert!(SmallTriplet::try_new(SMALL_INDEX_LIMIT, 0, 1.0).is_none());
    // A wide triplet converts only when it fits.
    let wide = Triplet::new(0, SMALL_INDEX_LIMIT + 3, 2.0);
    assert_eq!(SmallTriplet::try_from(wide), Err(wide));
    // The shape-level gate matches the per-entry one.
    assert!(fits_small_index(4, SMALL_INDEX_LIMIT));
    assert!(!fits_small_index(4, SMALL_INDEX_LIMIT + 1));
}

#[test]
fn csr_widens_rather_than_truncates_past_u32() {
    let m = boundary_matrix();
    let csr = CsrMatrix::from_coo(&m);
    assert!(!csr.small_indices(), "a 2^32-wide matrix must use wide CSR storage");
    // Column ids survive exactly — the tell-tale of silent truncation would
    // be `col & 0xFFFF_FFFF`.
    let cols: Vec<usize> = (0..csr.nnz()).map(|i| csr.col_id(i)).collect();
    assert!(cols.contains(&SMALL_INDEX_LIMIT));
    assert!(cols.contains(&(SMALL_INDEX_LIMIT + 9)));
    assert_eq!(csr.to_coo(), m);
}

#[test]
fn csr_picks_small_indices_at_the_boundary() {
    let m = CooMatrix::from_triplets(8, 8, vec![(0, 1, 1.0), (7, 7, 2.0)]).unwrap();
    assert!(CsrMatrix::from_coo(&m).small_indices());
}

/// A reader that hands out at most `chunk` bytes per `read` call — the
/// pathological streaming consumer every codec must tolerate.
struct TrickleReader<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn chunked_binary_reads_equal_one_shot_reads() {
    let m = boundary_matrix();
    let mut buf = Vec::new();
    write_binary(&mut buf, &m).expect("write");
    let one_shot = read_binary(buf.as_slice()).expect("one-shot read");
    for chunk in [1usize, 7, 64] {
        let trickled = read_binary(TrickleReader { data: &buf, pos: 0, chunk })
            .unwrap_or_else(|e| panic!("trickle read (chunk {chunk}) failed: {e}"));
        assert_eq!(trickled, one_shot, "chunk size {chunk} changed the decoded matrix");
    }
}

#[test]
fn chunked_market_reads_equal_one_shot_reads() {
    let m = boundary_matrix();
    let mut buf = Vec::new();
    write_market(&mut buf, &m).expect("write");
    let one_shot = read_market(buf.as_slice()).expect("one-shot read");
    for chunk in [1usize, 7, 64] {
        let trickled = read_market(TrickleReader { data: &buf, pos: 0, chunk })
            .unwrap_or_else(|e| panic!("trickle read (chunk {chunk}) failed: {e}"));
        assert_eq!(trickled, one_shot, "chunk size {chunk} changed the decoded matrix");
    }
}
