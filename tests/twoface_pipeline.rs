//! Integration of the preprocessing pipeline: profiling → classification →
//! plan → Figure-6 structures → execution, with the invariants each stage
//! must preserve.

use std::sync::Arc;
use twoface_core::{prepare_plan, run_algorithm, Algorithm, Problem, RankMatrices, RunOptions};
use twoface_matrix::gen::{webcrawl, WebcrawlConfig};
use twoface_net::CostModel;
use twoface_partition::{ModelCoefficients, PartitionPlan, StripeClass};

fn fixture() -> Problem {
    let a = webcrawl(
        &WebcrawlConfig { n: 1024, hosts: 32, per_row: 8, intra_host: 0.8, ..Default::default() },
        99,
    );
    Problem::with_generated_b(Arc::new(a), 16, 8, 32).expect("fixture is valid")
}

#[test]
fn plan_partitions_every_nonzero_exactly_once() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let plan = prepare_plan(&problem, &ModelCoefficients::from(&cost), &cost);
    let total: usize =
        (0..8).map(|rank| RankMatrices::build(&problem.a, &plan, rank, 32).nnz()).sum();
    assert_eq!(total, problem.a.nnz());
}

#[test]
fn async_stripes_in_structures_match_plan_classes() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let plan = prepare_plan(&problem, &ModelCoefficients::from(&cost), &cost);
    for rank in 0..8 {
        let m = RankMatrices::build(&problem.a, &plan, rank, 32);
        for stripe in m.asynchronous.stripes() {
            assert_eq!(
                plan.class_of(rank, stripe.stripe),
                Some(StripeClass::Async),
                "rank {rank} stripe {} misplaced",
                stripe.stripe
            );
            // Column-major order within the stripe, and unique_cols matches.
            let mut cols: Vec<u32> = stripe.entries.iter().map(|t| t.col).collect();
            assert!(cols.windows(2).all(|w| w[0] <= w[1]), "not column-major");
            cols.dedup();
            assert_eq!(cols, stripe.unique_cols);
        }
    }
}

#[test]
fn sync_local_structures_are_row_major_and_paneled() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let plan = prepare_plan(&problem, &ModelCoefficients::from(&cost), &cost);
    for rank in 0..8 {
        let m = RankMatrices::build(&problem.a, &plan, rank, 32);
        let sl = &m.sync_local;
        let rows: Vec<u32> = sl.entries().iter().map(|t| t.row).collect();
        assert!(rows.windows(2).all(|w| w[0] <= w[1]), "not row-major");
        for p in 0..sl.num_panels() {
            for t in sl.panel(p) {
                assert!(
                    t.row as usize / sl.panel_height() == p,
                    "entry row {} leaked into panel {p}",
                    t.row
                );
            }
        }
    }
}

#[test]
fn equalization_brings_lanes_close_when_model_is_exact() {
    // With oracle coefficients, the classifier should produce overlapping
    // lanes: the async lane should never be idle-trivial while the sync
    // lane dwarfs it by orders of magnitude (unless nothing was worth
    // flipping at all).
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let report = run_algorithm(
        Algorithm::TwoFace,
        &problem,
        &cost,
        &RunOptions { compute_values: false, ..Default::default() },
    )
    .expect("runs");
    let b = &report.critical_breakdown;
    let sync_side = b.sync_comm;
    let async_side = b.async_comm + b.async_comp;
    if async_side > 0.0 {
        // The model balances Comm_S against Comm_A + Comp_A. The greedy
        // stops at the budget boundary, so async may undershoot, but it must
        // never exceed the sync side by more than one stripe's cost — and
        // on this fixture, not by an order of magnitude.
        assert!(
            async_side <= sync_side * 10.0 + 1e-6,
            "async lane ({async_side}) dwarfs sync lane ({sync_side})"
        );
    }
}

#[test]
fn forced_plans_bracket_the_model_plan() {
    // All-sync and all-async plans are the extreme points; the model-built
    // plan should be at least as fast as the worse of the two on a mixed
    // matrix, and no slower than 2x the better.
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let opts = |plan| RunOptions { compute_values: false, plan, ..Default::default() };

    let model = run_algorithm(Algorithm::TwoFace, &problem, &cost, &opts(None)).unwrap().seconds;
    let all_sync = Arc::new(PartitionPlan::build_uniform(
        &problem.a,
        problem.layout.clone(),
        16,
        StripeClass::Sync,
    ));
    let sync_time =
        run_algorithm(Algorithm::TwoFace, &problem, &cost, &opts(Some(all_sync))).unwrap().seconds;
    let all_async = Arc::new(PartitionPlan::build_uniform(
        &problem.a,
        problem.layout.clone(),
        16,
        StripeClass::Async,
    ));
    let async_time =
        run_algorithm(Algorithm::TwoFace, &problem, &cost, &opts(Some(all_async))).unwrap().seconds;

    assert!(
        model <= sync_time.max(async_time) * 1.001,
        "model plan ({model}) worse than both extremes (sync {sync_time}, async {async_time})"
    );
}

#[test]
fn reusing_a_plan_matches_building_it_inline() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let plan = Arc::new(prepare_plan(&problem, &ModelCoefficients::from(&cost), &cost));
    let inline = run_algorithm(
        Algorithm::TwoFace,
        &problem,
        &cost,
        &RunOptions { compute_values: false, ..Default::default() },
    )
    .unwrap();
    let reused = run_algorithm(
        Algorithm::TwoFace,
        &problem,
        &cost,
        &RunOptions { compute_values: false, plan: Some(plan), ..Default::default() },
    )
    .unwrap();
    assert_eq!(inline.seconds, reused.seconds);
}

#[test]
fn multicast_metadata_only_reaches_classified_destinations() {
    let problem = fixture();
    let cost = CostModel::delta_scaled();
    let plan = prepare_plan(&problem, &ModelCoefficients::from(&cost), &cost);
    let layout = plan.layout();
    for stripe in 0..layout.num_stripes() {
        for &dest in plan.multicast_destinations(stripe) {
            assert_eq!(plan.class_of(dest, stripe), Some(StripeClass::Sync));
            assert_ne!(dest, layout.stripe_owner(stripe));
        }
    }
}

#[test]
fn memory_capped_plan_still_validates() {
    // Squeeze the sync buffer budget so the cap flips stripes, then verify
    // the capped execution still produces the right answer.
    let problem = fixture();
    let tight = CostModel {
        memory_per_node: 150 << 10, // 150 KiB: operands fit, sync buffers barely
        ..CostModel::delta_scaled()
    };
    let coeffs = ModelCoefficients {
        // All-sync-leaning model so the cap has something to flip.
        beta_async: 1.0,
        gamma_async: 1.0,
        ..ModelCoefficients::from(&tight)
    };
    let plan = prepare_plan(&problem, &coeffs, &tight);
    assert!(plan.memory_flips() > 0, "expected the memory cap to engage");
    let report = run_algorithm(
        Algorithm::TwoFace,
        &problem,
        &tight,
        &RunOptions { validate: true, plan: Some(Arc::new(plan)), ..Default::default() },
    )
    .expect("capped plan fits and validates");
    assert!(report.output.is_some());
}
