//! Integration: full-graph GCN training over the distributed SpMM (§5.4).

use std::sync::Arc;
use twoface_core::gnn::{normalize_adjacency, train_gcn, Activation, GcnLayer};
use twoface_core::{prepare_plan, Algorithm, RunOptions};
use twoface_matrix::gen::{rmat, RmatConfig};
use twoface_matrix::DenseMatrix;
use twoface_net::CostModel;
use twoface_partition::ModelCoefficients;

fn social_graph() -> Arc<twoface_matrix::CooMatrix> {
    let raw = rmat(&RmatConfig { scale: 9, edge_factor: 6, ..Default::default() }, 77);
    Arc::new(normalize_adjacency(&raw.symmetrize().expect("square")))
}

#[test]
fn gcn_layer_agrees_across_algorithms() {
    let a = social_graph();
    let h = DenseMatrix::from_fn(a.rows(), 8, |i, j| ((i + 3 * j) % 7) as f64 / 7.0);
    let layer = GcnLayer::new(8, 8, 5, Activation::Relu);
    let cost = CostModel::delta_scaled();
    let opts = RunOptions::default();
    let (via_twoface, _) =
        layer.forward(&a, &h, Algorithm::TwoFace, 4, 32, &cost, &opts).expect("two-face forward");
    let (via_ds, _) = layer
        .forward(&a, &h, Algorithm::DenseShifting { replication: 2 }, 4, 32, &cost, &opts)
        .expect("ds forward");
    assert!(via_twoface.approx_eq(&via_ds, 1e-9));
}

#[test]
fn training_epochs_have_constant_simulated_cost() {
    // The same adjacency is reused, so every epoch costs the same simulated
    // time — the property that lets preprocessing amortize (§5.4).
    let a = social_graph();
    let features = DenseMatrix::from_fn(a.rows(), 4, |i, j| ((i * 5 + j) % 9) as f64 / 9.0);
    let cost = CostModel::delta_scaled();
    let summary =
        train_gcn(&a, &features, 16, 4, Algorithm::TwoFace, 4, 32, &cost, &RunOptions::default())
            .expect("training runs");
    assert_eq!(summary.epoch_seconds.len(), 4);
    // Layer widths differ between layer 1 (4->16) and layer 2 (16->4), but
    // epochs are identical to each other.
    let first = summary.epoch_seconds[0];
    for &t in &summary.epoch_seconds {
        assert!((t - first).abs() < 1e-12, "epoch times drifted: {t} vs {first}");
    }
}

#[test]
fn preprocessing_amortizes_over_epochs() {
    // A reused plan must give the same per-epoch time as rebuilding it, and
    // the plan build only happens once outside the epoch loop.
    let a = social_graph();
    let cost = CostModel::delta_scaled();
    let k = 8;
    let problem =
        twoface_core::Problem::with_generated_b(Arc::clone(&a), k, 4, 32).expect("valid problem");
    let plan = Arc::new(prepare_plan(&problem, &ModelCoefficients::from(&cost), &cost));
    let opts_reuse = RunOptions { plan: Some(plan), ..Default::default() };
    let reused = twoface_core::run_algorithm(Algorithm::TwoFace, &problem, &cost, &opts_reuse)
        .expect("runs");
    let rebuilt =
        twoface_core::run_algorithm(Algorithm::TwoFace, &problem, &cost, &RunOptions::default())
            .expect("runs");
    assert_eq!(reused.seconds, rebuilt.seconds);
}

#[test]
fn deeper_training_is_deterministic() {
    let a = social_graph();
    let features = DenseMatrix::from_fn(a.rows(), 4, |i, j| ((i + j) % 5) as f64);
    let cost = CostModel::delta_scaled();
    let run = || {
        train_gcn(&a, &features, 8, 3, Algorithm::AsyncFine, 2, 32, &cost, &RunOptions::default())
            .expect("training runs")
    };
    assert_eq!(run(), run());
}
