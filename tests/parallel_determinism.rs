//! Parallel determinism suite: any real worker count must produce output
//! *bit-identical* to serial execution — for the kernels in isolation, for
//! full Two-Face/Allgather runs, for chaos-seeded (fault-injected) runs, and
//! for the preprocessing that feeds them. Real workers may only move host
//! wall-clock time; simulated seconds, traces, and every output bit are part
//! of the determinism contract (see `twoface_core::pool`).

use std::sync::Arc;
use twoface_core::kernels::{
    async_stripe_kernel, par_async_stripe, par_sync_panels, sync_panel_kernel, BlockRows,
};
use twoface_core::pool::Pool;
use twoface_core::{
    prepare_plan, reference_spmm_pooled, run_algorithm, Algorithm, Problem, RunOptions,
};
use twoface_matrix::gen::{erdos_renyi, webcrawl, WebcrawlConfig};
use twoface_matrix::{DenseMatrix, Triplet};
use twoface_net::{CostModel, FaultPlan};
use twoface_partition::{ModelCoefficients, OneDimLayout, PartitionPlan, PlanOptions};

const WORKER_SWEEP: [usize; 3] = [2, 3, 8];

/// Row-major sorted pseudorandom triplets with irregular row occupancy.
fn random_entries(rows: usize, cols: usize, nnz: usize, seed: u64) -> Vec<Triplet> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut entries: Vec<Triplet> = (0..nnz)
        .map(|_| {
            // Skew rows so some rows are heavy and many are empty — the
            // shape that stresses row-aligned chunking.
            let r = ((next() as usize) % rows) * ((next() as usize) % 3 + 1) % rows;
            let c = (next() as usize) % cols;
            Triplet::new(r, c, ((next() % 2000) as f64 - 1000.0) / 333.0)
        })
        .collect();
    entries.sort_by_key(|t| (t.row, t.col));
    entries.dedup_by_key(|t| (t.row, t.col));
    entries
}

fn block_source(cols: usize, k: usize, seed: u64) -> BlockRows {
    let mut rows = BlockRows::new(k);
    let b: Vec<f64> =
        (0..cols * k).map(|i| ((i as u64).wrapping_mul(seed | 1) % 97) as f64 * 0.125).collect();
    rows.add_block(0..cols, Arc::new(b));
    rows
}

/// Kernel-level contract: both parallel kernels match their serial forms
/// bitwise across K ∈ {8, 32, 128}, multiple seeds, and worker counts.
#[test]
fn parallel_kernels_bitwise_match_serial_across_k_and_seeds() {
    for k in [8usize, 32, 128] {
        for seed in [1u64, 17, 400] {
            let rows = 301; // not a multiple of any chunk size
            let cols = 128;
            let entries = random_entries(rows, cols, 4000, seed ^ (k as u64) << 3);
            let mut col_major = entries.clone();
            col_major.sort_by_key(|t| (t.col, t.row));
            let src = block_source(cols, k, seed);

            let mut serial_sync = vec![0.0; rows * k];
            sync_panel_kernel(&entries, &src, &mut serial_sync, k);
            let mut serial_async = vec![0.0; rows * k];
            async_stripe_kernel(&col_major, &src, &mut serial_async, k);

            for workers in WORKER_SWEEP {
                let pool = Pool::new(workers);
                let mut par = vec![0.0; rows * k];
                par_sync_panels(&pool, &entries, &src, &mut par, k);
                assert_eq!(par, serial_sync, "sync K={k} seed={seed} workers={workers}");
                let mut par = vec![0.0; rows * k];
                par_async_stripe(&pool, &entries, &src, &mut par, k);
                assert_eq!(par, serial_async, "async K={k} seed={seed} workers={workers}");
            }
        }
    }
}

/// Panel edge cases: empty entry sets, one-row panels, and panels taller
/// than the whole output block all stay exact under parallel drivers.
#[test]
fn panel_edge_cases_are_exact() {
    let k = 8;
    let pool = Pool::new(4);
    let src = block_source(16, k, 3);

    // Empty panel: a no-op for every worker count.
    let mut c = vec![1.5; 4 * k];
    par_sync_panels(&pool, &[] as &[Triplet], &src, &mut c, k);
    assert_eq!(c, vec![1.5; 4 * k]);

    // Single-row panels: every row occupied, chunk boundaries between all.
    let single: Vec<Triplet> = (0..64).map(|r| Triplet::new(r, r % 16, 1.0 + r as f64)).collect();
    let mut serial = vec![0.0; 64 * k];
    sync_panel_kernel(&single, &src, &mut serial, k);
    let mut par = vec![0.0; 64 * k];
    par_sync_panels(&pool, &single, &src, &mut par, k);
    assert_eq!(par, serial);

    // "Panel height > rows": all entries in one output row — no row-aligned
    // split point exists, so one worker must take the whole slice.
    let one_row: Vec<Triplet> = (0..16).map(|c| Triplet::new(0, c, 0.5 * c as f64)).collect();
    let mut serial = vec![0.0; k];
    sync_panel_kernel(&one_row, &src, &mut serial, k);
    let mut par = vec![0.0; k];
    par_sync_panels(&pool, &one_row, &src, &mut par, k);
    assert_eq!(par, serial);
}

/// The chaos fixture: dense intra-host stripes plus sparse scatter, so both
/// lanes run.
fn fixture(n: usize, k: usize, p: usize, stripe: usize) -> Problem {
    let a = webcrawl(
        &WebcrawlConfig { n, hosts: n / 32, per_row: 6, intra_host: 0.7, ..Default::default() },
        31,
    );
    Problem::with_generated_b(Arc::new(a), k, p, stripe).expect("fixture is valid")
}

fn run_with_workers(
    algorithm: Algorithm,
    problem: &Problem,
    workers: usize,
    fault_plan: Option<FaultPlan>,
) -> (DenseMatrix, f64, Vec<f64>, u64) {
    let report = run_algorithm(
        algorithm,
        problem,
        &CostModel::delta_scaled(),
        &RunOptions { workers: Some(workers), fault_plan, ..Default::default() },
    )
    .expect("run succeeds");
    (
        report.output.expect("compute on by default"),
        report.seconds,
        report.rank_seconds,
        report.faults_injected,
    )
}

/// Full-run contract: Two-Face and Allgather produce bit-identical outputs
/// AND identical simulated timings for serial and parallel execution,
/// across K ∈ {8, 32, 128}.
#[test]
fn full_runs_bitwise_match_serial_across_k() {
    for k in [8usize, 32, 128] {
        let problem = fixture(512, k, 4, 32);
        for algorithm in [Algorithm::TwoFace, Algorithm::Allgather] {
            let (c1, s1, rs1, _) = run_with_workers(algorithm, &problem, 1, None);
            for workers in WORKER_SWEEP {
                let (c, s, rs, _) = run_with_workers(algorithm, &problem, workers, None);
                assert_eq!(c, c1, "{algorithm} K={k} workers={workers}: output differs");
                assert_eq!(s, s1, "{algorithm} K={k} workers={workers}: modeled time differs");
                assert_eq!(rs, rs1, "{algorithm} K={k} workers={workers}: rank times differ");
            }
        }
    }
}

/// The remaining baselines run through the same parallel kernels; one seed
/// each keeps the whole surface covered.
#[test]
fn baseline_runs_bitwise_match_serial() {
    let problem = fixture(512, 8, 4, 32);
    for algorithm in
        [Algorithm::AsyncCoarse, Algorithm::AsyncFine, Algorithm::DenseShifting { replication: 2 }]
    {
        let (c1, s1, _, _) = run_with_workers(algorithm, &problem, 1, None);
        let (c4, s4, _, _) = run_with_workers(algorithm, &problem, 4, None);
        assert_eq!(c4, c1, "{algorithm}: output differs at 4 workers");
        assert_eq!(s4, s1, "{algorithm}: modeled time differs at 4 workers");
    }
}

/// Fault injection composes with real workers: per-(rank, op) fault
/// decisions replay identically regardless of worker scheduling, so a
/// chaos-seeded run recovers to the same bits, the same modeled seconds,
/// and the same injected-fault count at any worker count.
#[test]
fn chaos_seeded_runs_are_worker_independent() {
    let problem = fixture(512, 8, 4, 32);
    for seed in [0xC4A05u64, 0xC4A0A] {
        for algorithm in [Algorithm::TwoFace, Algorithm::Allgather] {
            let plan = FaultPlan::heavy(seed);
            let (c1, s1, rs1, f1) = run_with_workers(algorithm, &problem, 1, Some(plan.clone()));
            for workers in [2usize, 4] {
                let (c, s, rs, f) =
                    run_with_workers(algorithm, &problem, workers, Some(plan.clone()));
                assert_eq!(c, c1, "{algorithm} seed={seed:#x} workers={workers}: output");
                assert_eq!(s, s1, "{algorithm} seed={seed:#x} workers={workers}: seconds");
                assert_eq!(rs, rs1, "{algorithm} seed={seed:#x} workers={workers}: rank times");
                assert_eq!(f, f1, "{algorithm} seed={seed:#x} workers={workers}: fault count");
            }
        }
    }
}

/// Parallel preprocessing: the partition plan is identical for any worker
/// count (per-node classifications are collected in rank order).
#[test]
fn plans_are_identical_across_workers() {
    let problem = fixture(512, 32, 4, 32);
    let cost = CostModel::delta_scaled();
    let coeffs = ModelCoefficients::from(&cost);
    let serial = prepare_plan(&problem, &coeffs, &cost);
    let a = erdos_renyi(256, 256, 3000, 11);
    let layout = OneDimLayout::new(256, 256, 4, 16);
    for workers in WORKER_SWEEP {
        let par = PartitionPlan::build(
            &problem.a,
            problem.layout.clone(),
            &coeffs,
            problem.k(),
            PlanOptions { workers, ..Default::default() },
        );
        let uncapped_serial = PartitionPlan::build(
            &problem.a,
            problem.layout.clone(),
            &coeffs,
            problem.k(),
            PlanOptions::default(),
        );
        assert_eq!(par, uncapped_serial, "uncapped plan differs at {workers} workers");
        let er_par = PartitionPlan::build(
            &a,
            layout.clone(),
            &coeffs,
            8,
            PlanOptions { workers, ..Default::default() },
        );
        let er_serial =
            PartitionPlan::build(&a, layout.clone(), &coeffs, 8, PlanOptions::default());
        assert_eq!(er_par, er_serial, "erdos-renyi plan differs at {workers} workers");
    }
    // The capped builder (prepare_plan) agrees with itself across env-driven
    // worker counts too: rebuild through the public entry point.
    let again = prepare_plan(&problem, &coeffs, &cost);
    assert_eq!(serial, again);
}

/// The parallel verification oracle is bitwise equal to its serial form.
#[test]
fn parallel_reference_matches_serial() {
    let a = erdos_renyi(500, 300, 20_000, 9);
    let b = DenseMatrix::from_fn(300, 32, |i, j| ((i * 31 + j * 7) % 23) as f64 * 0.5 - 5.0);
    let serial = reference_spmm_pooled(&a, &b, &Pool::SERIAL);
    for workers in WORKER_SWEEP {
        let par = reference_spmm_pooled(&a, &b, &Pool::new(workers));
        assert_eq!(par, serial, "reference differs at {workers} workers");
    }
}
