//! The eight Table-1 analogs must carry the structural signatures that
//! drive their paper counterparts' behaviour — these tests pin the suite
//! down so generator tweaks can't silently change what the benchmarks
//! measure.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use twoface_core::{prepare_plan, Problem};
use twoface_matrix::gen::SuiteMatrix;
use twoface_matrix::stats::{column_block_fanout, MatrixStats};
use twoface_matrix::CooMatrix;
use twoface_net::CostModel;
use twoface_partition::{ModelCoefficients, StripeClass};

const P: usize = 32;

/// Generation is the dominant cost of this binary (especially unoptimized);
/// share each matrix across the tests.
fn suite(m: SuiteMatrix) -> Arc<CooMatrix> {
    static CACHE: OnceLock<Mutex<HashMap<SuiteMatrix, Arc<CooMatrix>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("cache lock");
    Arc::clone(cache.entry(m).or_insert_with(|| Arc::new(m.generate())))
}

fn stats(m: SuiteMatrix) -> MatrixStats {
    MatrixStats::compute(&suite(m))
}

#[test]
fn banded_matrices_are_near_diagonal() {
    for m in [SuiteMatrix::Queen, SuiteMatrix::Stokes] {
        let s = stats(m);
        assert!(
            s.near_diagonal_fraction > 0.99,
            "{m}: near-diagonal {:.3}",
            s.near_diagonal_fraction
        );
    }
}

#[test]
fn social_networks_have_skewed_columns() {
    let twitter = stats(SuiteMatrix::Twitter);
    assert!(twitter.col_degrees.gini > 0.7, "twitter gini {:.3}", twitter.col_degrees.gini);
    // Friendster is deliberately milder (high fan-out, less skew).
    let friendster = stats(SuiteMatrix::Friendster);
    assert!(
        friendster.col_degrees.gini < twitter.col_degrees.gini,
        "friendster should be less skewed than twitter"
    );
}

#[test]
fn kmer_is_hypersparse_and_local() {
    let s = stats(SuiteMatrix::Kmer);
    assert!(s.row_degrees.mean < 3.0, "kmer mean degree {:.2}", s.row_degrees.mean);
    assert!(s.density < 1e-5, "kmer density {:.2e}", s.density);
}

#[test]
fn mawi_is_sparse_with_dense_hubs() {
    let s = stats(SuiteMatrix::Mawi);
    assert!(s.row_degrees.mean < 3.0);
    assert!(s.col_degrees.max > 1000, "mawi hub column {:.0}", s.col_degrees.max as f64);
    assert!(s.col_degrees.gini > 0.5);
}

#[test]
fn web_matrices_have_host_locality() {
    for m in [SuiteMatrix::Web, SuiteMatrix::Arabic] {
        let a = suite(m);
        let block = a.rows().div_ceil(P);
        // Most nonzeros fall in the diagonal megatile (local-input under 1D).
        let local = a.iter().filter(|(r, c, _)| r / block == c / block).count();
        assert!(
            local as f64 > 0.95 * a.nnz() as f64,
            "{m}: only {:.1}% local",
            100.0 * local as f64 / a.nnz() as f64
        );
    }
}

#[test]
fn fanout_profiles_separate_the_two_camps() {
    // twitter/friendster dense stripes are needed by most nodes; queen's by
    // a couple of neighbours.
    let mean_fanout = |m: SuiteMatrix| {
        let a = suite(m);
        let f = column_block_fanout(&a, m.stripe_width(), a.rows().div_ceil(P));
        let needed: Vec<usize> = f.into_iter().filter(|&x| x > 0).collect();
        needed.iter().sum::<usize>() as f64 / needed.len() as f64
    };
    let twitter = mean_fanout(SuiteMatrix::Twitter);
    let queen = mean_fanout(SuiteMatrix::Queen);
    assert!(twitter > 25.0, "twitter mean fan-out {twitter:.1}");
    assert!(queen < 8.0, "queen mean fan-out {queen:.1}");
}

#[test]
fn classifier_verdicts_match_the_papers_narrative() {
    // The §4.2 classifier, on the real suite at K = 128: locality matrices
    // put almost all their nonzeros in local-input; twitter keeps most
    // remote mass synchronous.
    let cost = CostModel::delta_scaled();
    let coeffs = ModelCoefficients::from(&cost);
    let share = |m: SuiteMatrix| {
        let a = suite(m);
        let nnz = a.nnz() as f64;
        let problem = Problem::with_generated_b(a, 128, P, m.stripe_width()).expect("valid");
        let plan = prepare_plan(&problem, &coeffs, &cost);
        let (local, sync, async_) = plan.nnz_totals();
        (local as f64 / nnz, sync as f64 / nnz, async_ as f64 / nnz)
    };
    let (queen_local, _, _) = share(SuiteMatrix::Queen);
    assert!(queen_local > 0.9, "queen local share {queen_local:.2}");
    let (web_local, _, _) = share(SuiteMatrix::Web);
    assert!(web_local > 0.9, "web local share {web_local:.2}");
    let (twitter_local, twitter_sync, _) = share(SuiteMatrix::Twitter);
    assert!(twitter_local < 0.5, "twitter local share {twitter_local:.2}");
    assert!(twitter_sync > 0.3, "twitter sync share {twitter_sync:.2}");
}

#[test]
fn every_generated_matrix_is_identical_across_calls() {
    // Two matrices suffice as a determinism canary (regenerating all eight
    // would double this binary's dominant cost for no extra signal).
    for m in [SuiteMatrix::Queen, SuiteMatrix::Mawi] {
        let a = suite(m);
        let b = m.generate();
        assert_eq!(a.nnz(), b.nnz(), "{m}");
        let sum_a: f64 = a.iter().map(|(_, _, v)| v).sum();
        let sum_b: f64 = b.iter().map(|(_, _, v)| v).sum();
        assert_eq!(sum_a, sum_b, "{m}");
    }
}

#[test]
fn uniform_control_matrix_classifies_one_sided() {
    // An Erdős–Rényi control has no dense regions: whatever the classifier
    // picks, it must pick (nearly) one flavor, not a meaningful mix — the
    // "input-dependent" premise of §3 requires structure to exploit.
    let a = std::sync::Arc::new(twoface_matrix::gen::erdos_renyi(4096, 4096, 40_000, 5));
    let cost = CostModel::delta_scaled();
    let problem = Problem::with_generated_b(a, 128, 8, 128).expect("valid");
    let plan = prepare_plan(&problem, &ModelCoefficients::from(&cost), &cost);
    let (_, sync, async_) = plan.class_totals();
    let minority = sync.min(async_) as f64;
    let majority = sync.max(async_) as f64;
    assert!(
        minority < 0.35 * majority,
        "uniform matrix split {sync} sync / {async_} async — too balanced to be structure-driven"
    );
    let _ = StripeClass::Sync; // keep the import honest
}
