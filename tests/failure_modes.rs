//! Failure injection and boundary conditions: out-of-memory refusals,
//! invalid configurations, and degenerate inputs.

use std::sync::Arc;
use twoface_core::{run_algorithm, Algorithm, Problem, RunError, RunOptions};
use twoface_matrix::gen::erdos_renyi;
use twoface_matrix::{CooMatrix, DenseMatrix};
use twoface_net::{Cluster, CostModel, FaultPlan, NetError, RankOutput};

fn small_problem(p: usize) -> Problem {
    Problem::with_generated_b(Arc::new(erdos_renyi(128, 128, 800, 1)), 8, p, 16)
        .expect("valid problem")
}

#[test]
fn allgather_out_of_memory_is_reported() {
    let problem = small_problem(4);
    // Full replication needs 128 * 8 * 8 = 8 KiB plus operands; cap below.
    let tiny = CostModel { memory_per_node: 4 << 10, ..CostModel::delta_scaled() };
    let err =
        run_algorithm(Algorithm::Allgather, &problem, &tiny, &RunOptions::default()).unwrap_err();
    match err {
        RunError::OutOfMemory { required, available, .. } => {
            assert!(required > available);
            assert_eq!(available, 4 << 10);
        }
        other => panic!("expected OutOfMemory, got {other}"),
    }
}

#[test]
fn higher_replication_fails_before_lower() {
    let problem = small_problem(8);
    // Find a cap where DS2 fits but DS8 does not.
    let base = CostModel::delta_scaled();
    let ds2 = run_algorithm(
        Algorithm::DenseShifting { replication: 2 },
        &problem,
        &base,
        &RunOptions { compute_values: false, ..Default::default() },
    )
    .unwrap();
    let ds8_extra_over_ds2 = 6 * 2 * 16 * 8 * 8; // 6 extra blocks, 16 rows, K=8
    let cap = ds2.memory_peak_bytes + ds8_extra_over_ds2 / 2;
    let capped = CostModel { memory_per_node: cap, ..base };
    assert!(run_algorithm(
        Algorithm::DenseShifting { replication: 2 },
        &problem,
        &capped,
        &RunOptions { compute_values: false, ..Default::default() }
    )
    .is_ok());
    assert!(matches!(
        run_algorithm(
            Algorithm::DenseShifting { replication: 8 },
            &problem,
            &capped,
            &RunOptions { compute_values: false, ..Default::default() }
        ),
        Err(RunError::OutOfMemory { .. })
    ));
}

#[test]
fn replication_beyond_nodes_is_rejected() {
    let problem = small_problem(4);
    let err = run_algorithm(
        Algorithm::DenseShifting { replication: 8 },
        &problem,
        &CostModel::delta_scaled(),
        &RunOptions::default(),
    )
    .unwrap_err();
    assert_eq!(err, RunError::ReplicationExceedsNodes { replication: 8, nodes: 4 });
}

#[test]
fn zero_replication_is_rejected() {
    let problem = small_problem(4);
    assert!(matches!(
        run_algorithm(
            Algorithm::DenseShifting { replication: 0 },
            &problem,
            &CostModel::delta_scaled(),
            &RunOptions::default(),
        ),
        Err(RunError::ReplicationExceedsNodes { .. })
    ));
}

#[test]
fn mismatched_operand_shapes_are_rejected() {
    let a = Arc::new(erdos_renyi(32, 48, 100, 2));
    let b = Arc::new(DenseMatrix::zeros(32, 4)); // needs 48 rows
    let err = Problem::new(a, b, 4, 8).unwrap_err();
    assert!(matches!(err, RunError::Shape { .. }));
}

#[test]
fn more_nodes_than_rows_is_rejected() {
    let a = Arc::new(erdos_renyi(4, 4, 8, 3));
    assert!(matches!(Problem::with_generated_b(a, 4, 16, 2), Err(RunError::Shape { .. })));
}

#[test]
fn empty_matrix_runs_everywhere() {
    let a = Arc::new(CooMatrix::new(64, 64));
    let problem = Problem::with_generated_b(a, 4, 4, 8).expect("valid");
    let cost = CostModel::delta_scaled();
    for algo in Algorithm::FIGURE7_LINEUP {
        if let Algorithm::DenseShifting { replication } = algo {
            if replication > 4 {
                continue;
            }
        }
        let report = run_algorithm(algo, &problem, &cost, &RunOptions::default())
            .unwrap_or_else(|e| panic!("{algo} failed on empty matrix: {e}"));
        let c = report.output.expect("output assembled");
        assert_eq!(c.frobenius_norm(), 0.0, "{algo} produced nonzero output");
    }
}

#[test]
fn rank_with_no_nonzeros_participates_cleanly() {
    // All nonzeros on the first node's rows; other nodes still take part in
    // the collectives and windows.
    let a = Arc::new(
        CooMatrix::from_triplets(64, 64, vec![(0, 40, 1.0), (1, 63, 2.0), (2, 2, 3.0)])
            .expect("in bounds"),
    );
    let problem = Problem::with_generated_b(a, 4, 4, 8).expect("valid");
    let report = run_algorithm(
        Algorithm::TwoFace,
        &problem,
        &CostModel::delta_scaled(),
        &RunOptions { validate: true, ..Default::default() },
    )
    .expect("runs");
    assert!(report.output.is_some());
}

#[test]
fn validation_catches_a_corrupted_b() {
    // Feed validate a problem whose B disagrees with the one used for the
    // reference check — by hand-corrupting the output comparison through a
    // zero-sized B mismatch this cannot be built, so instead check the
    // validator accepts correct output (positive control) and that it runs
    // with compute disabled only when validate is off.
    let problem = small_problem(4);
    let cost = CostModel::delta_scaled();
    let ok = run_algorithm(
        Algorithm::TwoFace,
        &problem,
        &cost,
        &RunOptions { validate: true, ..Default::default() },
    );
    assert!(ok.is_ok());
    let no_compute = run_algorithm(
        Algorithm::TwoFace,
        &problem,
        &cost,
        &RunOptions { compute_values: false, ..Default::default() },
    )
    .unwrap();
    assert!(no_compute.output.is_none());
}

/// A window-backed exchange with a trailing barrier: touches windows, meet
/// tags, and the fault machinery all at once.
fn windowed_exchange(cluster: &Cluster) -> Vec<RankOutput<Result<Vec<f64>, NetError>>> {
    cluster.run(|ctx| {
        let win = ctx.create_window(vec![ctx.rank() as f64 + 1.0; 8])?;
        let peer = 1 - ctx.rank();
        let rows = ctx.win_rget_rows(win, peer, &[(0, 4)], 2)?;
        ctx.barrier()?;
        Ok(rows)
    })
}

/// Regression: consecutive `run()` calls on one cluster with *different*
/// fault plans must neither alias each other's windows nor leak meet tags —
/// the second run must be indistinguishable from the same plan on a fresh
/// cluster.
#[test]
fn consecutive_runs_with_different_fault_plans_stay_isolated() {
    let reused = Cluster::new(2, CostModel::delta_scaled());
    reused.set_fault_plan(Some(FaultPlan::heavy(3)));
    let first = windowed_exchange(&reused);
    reused.set_fault_plan(Some(FaultPlan::light(9)));
    let second = windowed_exchange(&reused);

    // Both runs recovered and read the peer's window, not a stale one.
    for outputs in [&first, &second] {
        for o in outputs {
            let peer_value = (2 - o.rank) as f64;
            assert_eq!(o.result.as_ref().unwrap(), &vec![peer_value; 8]);
        }
    }

    let fresh = Cluster::new(2, CostModel::delta_scaled());
    fresh.set_fault_plan(Some(FaultPlan::light(9)));
    let reference = windowed_exchange(&fresh);
    for (s, f) in second.iter().zip(&reference) {
        assert_eq!(s.result.as_ref().unwrap(), f.result.as_ref().unwrap());
        assert_eq!(s.trace, f.trace, "rank {}: reused cluster leaked state", s.rank);
        assert_eq!(s.finish_time(), f.finish_time(), "rank {}", s.rank);
    }
}

/// Every `RunError` variant is constructible, Displays with units, and
/// round-trips its network cause through `std::error::Error::source`.
#[test]
fn run_error_variants_display_and_source() {
    use std::error::Error;

    let transfer =
        NetError::TransferTimeout { rank: 2, target: 0, attempts: 5, waited_seconds: 1.5 };
    let stall =
        NetError::RankStalled { rank: 0, straggler: 3, stalled_seconds: 9.0, timeout_seconds: 1.0 };
    let variants = vec![
        RunError::OutOfMemory { rank: 1, required: 1 << 30, available: 1 << 20 },
        RunError::ReplicationExceedsNodes { replication: 8, nodes: 4 },
        RunError::Shape { context: "B has 3 rows but A has 4 columns".into() },
        RunError::ValidationFailed { max_abs_diff: 0.25 },
        RunError::TransferTimeout { rank: 2, source: transfer.clone(), flight: vec![] },
        RunError::RankStalled { rank: 0, source: stall.clone(), flight: vec![] },
    ];

    for e in &variants {
        assert!(!e.to_string().is_empty(), "{e:?} has an empty Display");
    }
    assert!(variants[0].to_string().contains("MiB"), "{}", variants[0]);
    assert!(variants[4].to_string().contains("s simulated"), "{}", variants[4]);
    assert!(variants[5].to_string().contains("stall timeout"), "{}", variants[5]);
    assert!(variants[5].to_string().contains(" s"), "{}", variants[5]);

    for (e, want) in [(&variants[4], &transfer), (&variants[5], &stall)] {
        let source = e.source().expect("net-backed variants expose their cause");
        let net = source.downcast_ref::<NetError>().expect("source is the NetError");
        assert_eq!(net, want);
    }
    for e in &variants[..4] {
        assert!(e.source().is_none(), "{e:?} should have no source");
    }
}

#[test]
fn memory_peak_is_reported_even_on_success() {
    let problem = small_problem(4);
    let report = run_algorithm(
        Algorithm::Allgather,
        &problem,
        &CostModel::delta_scaled(),
        &RunOptions { compute_values: false, ..Default::default() },
    )
    .unwrap();
    // At least the full dense B must be accounted.
    assert!(report.memory_peak_bytes > 128 * 8 * 8);
}
