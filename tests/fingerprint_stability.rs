//! Fingerprint stability contract for the serving layer's cache keys.
//!
//! The plan cache key and the `PreparedMatrix` content fingerprint must be
//! pure functions of `(A, execution options, cluster shape, K)`: worker
//! counts are deliberately excluded (preprocessing is deterministic across
//! workers), and — since the fleet runner re-invokes every experiment as a
//! subprocess with whatever environment CI hands it — env-inherited knobs
//! (`TWOFACE_THREADS`, `TWOFACE_TRACE`) must not leak into the keys either.
//! A leak would make warm caches miss (or worse, collide) across fleet
//! invocations that only differ in inherited environment.
//!
//! The subprocess leg re-runs this very test binary in child mode under
//! different `TWOFACE_THREADS` values and compares the printed keys.

use std::process::Command;
use std::sync::Arc;
use twoface_core::{Algorithm, PreparedMatrix, Problem, RunOptions};
use twoface_matrix::gen::erdos_renyi;
use twoface_net::CostModel;
use twoface_serve::{ServeConfig, SpmmService};

/// Set in the child re-invocation: print the keys and exit.
const CHILD_ENV: &str = "TWOFACE_FP_CHILD";

const K: usize = 16;
const P: usize = 4;
const STRIPE_WIDTH: usize = 32;

fn fixed_problem() -> Problem {
    let a = Arc::new(erdos_renyi(256, 256, 4_000, 7));
    Problem::with_generated_b(a, K, P, STRIPE_WIDTH).expect("fixture problem is valid")
}

/// The fingerprints under contract: the service's plan-cache key (for an
/// explicit algorithm and for `Auto`, which must resolve to the same
/// concrete choice in every environment) and the prepared artifact's
/// content fingerprint, on a fixed problem.
fn compute_keys(workers: Option<usize>) -> (u64, u64, u64) {
    let cost = CostModel::delta_scaled();
    let problem = fixed_problem();
    let mut service = SpmmService::new(ServeConfig::new(P, cost));
    let handle = service
        .register_matrix(Arc::clone(&problem.a), STRIPE_WIDTH)
        .expect("fixture matrix registers");
    let cache_key = service.plan_cache_key(handle, Algorithm::TwoFace, K).expect("handle is known");
    let auto_key = service.plan_cache_key(handle, Algorithm::Auto, K).expect("handle is known");
    let options = RunOptions { workers, ..RunOptions::default() };
    let prepared = PreparedMatrix::build(&problem, &cost, &options).expect("fixture preprocesses");
    (cache_key, auto_key, prepared.fingerprint())
}

#[test]
fn fingerprints_are_stable_across_workers_and_subprocess_env() {
    let (cache_key, auto_key, prep_fp) = compute_keys(None);

    if std::env::var(CHILD_ENV).is_ok() {
        // Child mode: report what this environment computes and stop.
        println!("FP_CACHE_KEY={cache_key} FP_AUTO={auto_key} FP_PREP={prep_fp}");
        return;
    }

    // Explicit worker counts in-process: same keys.
    for workers in [1, 2, 7] {
        let (k, a, p) = compute_keys(Some(workers));
        assert_eq!(
            (k, a, p),
            (cache_key, auto_key, prep_fp),
            "keys drifted at workers = {workers}"
        );
    }

    // Fleet-style subprocess re-invocation under env-inherited knobs: the
    // child is this same test binary, filtered to this test, with
    // TWOFACE_THREADS (and a throwaway TWOFACE_TRACE) injected.
    let exe = std::env::current_exe().expect("test binary path");
    for threads in ["1", "3", "8"] {
        let trace_sink = std::env::temp_dir().join(format!("twoface-fp-trace-{threads}.jsonl"));
        let output = Command::new(&exe)
            .args([
                "fingerprints_are_stable_across_workers_and_subprocess_env",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env(CHILD_ENV, "1")
            .env("TWOFACE_THREADS", threads)
            .env("TWOFACE_TRACE", &trace_sink)
            .output()
            .expect("child test process spawns");
        std::fs::remove_file(&trace_sink).ok();
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "child with TWOFACE_THREADS={threads} failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        // The key line may share a line with libtest's `test <name> ... `
        // prefix (printed without a trailing newline), so search by
        // substring rather than line start.
        let start = stdout
            .find("FP_CACHE_KEY=")
            .unwrap_or_else(|| panic!("child printed no keys:\n{stdout}"));
        let line = stdout[start..].lines().next().expect("key line terminates");
        assert_eq!(
            line.trim(),
            format!("FP_CACHE_KEY={cache_key} FP_AUTO={auto_key} FP_PREP={prep_fp}"),
            "env-inherited TWOFACE_THREADS={threads} leaked into a cache key"
        );
    }
}
