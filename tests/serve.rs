//! Integration tests of the persistent SpMM service: plan-cache behavior,
//! batching bit-identity (including under injected faults), retry/fallback
//! degradation, and the session timeline.

use std::sync::Arc;
use twoface_core::{Algorithm, PreparedMatrix, Problem, RunError, RunOptions};
use twoface_matrix::gen::erdos_renyi;
use twoface_matrix::DenseMatrix;
use twoface_net::{CostModel, FaultPlan};
use twoface_serve::{
    timeline_jsonl, ServeConfig, ServeError, SessionPhase, SpmmRequest, SpmmService,
};

const N: usize = 256;
const P: usize = 4;
const STRIPE: usize = 16;

fn matrix(seed: u64) -> Arc<twoface_matrix::CooMatrix> {
    Arc::new(erdos_renyi(N, N, 6_000, seed))
}

fn dense(k: usize, seed: u64) -> Arc<DenseMatrix> {
    Arc::new(DenseMatrix::from_fn(N, k, |i, j| {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((j as u64).wrapping_mul(seed.wrapping_mul(2) | 1));
        let h = (h ^ (h >> 31)).wrapping_mul(0xD6E8FEB86659FD93);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }))
}

fn config() -> ServeConfig {
    ServeConfig::new(P, CostModel::delta_scaled())
}

#[test]
fn cache_hit_skips_preprocessing_bit_identically() {
    let mut service = SpmmService::new(config());
    let a = service.register_matrix(matrix(1), STRIPE).unwrap();
    let b = dense(16, 3);

    let miss = service.run_one(SpmmRequest::new(a, Arc::clone(&b))).unwrap();
    assert_eq!(miss.cache_hit, Some(false));
    assert!(miss.prep_wall_nanos > 0, "a miss pays for preprocessing");

    let hit = service.run_one(SpmmRequest::new(a, b)).unwrap();
    assert_eq!(hit.cache_hit, Some(true));
    assert_eq!(hit.prep_wall_nanos, 0, "a hit skips preprocessing entirely");

    // Bit-identical outputs: the cached artifact is the same plan and rank
    // structures the miss built.
    assert_eq!(
        miss.output.unwrap().as_slice(),
        hit.output.unwrap().as_slice(),
        "hit and miss outputs must match bitwise"
    );

    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(service.metrics().counter("serve.cache.hits"), 1);
    assert_eq!(service.metrics().counter("serve.cache.misses"), 1);
}

#[test]
fn fingerprints_are_stable_across_worker_counts() {
    let a = matrix(5);
    let problem = Problem::new(Arc::clone(&a), dense(8, 1), P, STRIPE).unwrap();
    let cost = CostModel::delta_scaled();
    let one = PreparedMatrix::build(
        &problem,
        &cost,
        &RunOptions { workers: Some(1), ..Default::default() },
    )
    .unwrap();
    let three = PreparedMatrix::build(
        &problem,
        &cost,
        &RunOptions { workers: Some(3), ..Default::default() },
    )
    .unwrap();
    assert_eq!(one.fingerprint(), three.fingerprint());
    assert_eq!(one.approx_bytes(), three.approx_bytes());

    // Cache keys likewise ignore worker counts: two services differing only
    // in `workers` agree on every key.
    let mut one_worker = config();
    one_worker.workers = Some(1);
    let mut many_workers = config();
    many_workers.workers = Some(3);
    let mut s1 = SpmmService::new(one_worker);
    let mut s2 = SpmmService::new(many_workers);
    let h1 = s1.register_matrix(Arc::clone(&a), STRIPE).unwrap();
    let h2 = s2.register_matrix(a, STRIPE).unwrap();
    assert_eq!(
        s1.plan_cache_key(h1, Algorithm::TwoFace, 16).unwrap(),
        s2.plan_cache_key(h2, Algorithm::TwoFace, 16).unwrap(),
    );
}

#[test]
fn differing_exec_opts_produce_distinct_cache_keys() {
    let a = matrix(6);
    let base = SpmmService::new(config());
    // Sharing a matrix between services keeps the content fingerprint fixed
    // so only the execution options vary.
    let mut variants: Vec<SpmmService> = Vec::new();
    let mut taller_panels = config();
    taller_panels.exec.row_panel_height *= 2;
    variants.push(SpmmService::new(taller_panels));
    let mut coalesce_off = config();
    coalesce_off.exec.coalesce_distance_override = Some(0);
    variants.push(SpmmService::new(coalesce_off));
    let mut fanout = config();
    fanout.classifier = twoface_partition::ClassifierKind::FanoutAware { penalty: 0.5 };
    variants.push(SpmmService::new(fanout));
    let mut other_cost = config();
    other_cost.cost = CostModel::delta();
    variants.push(SpmmService::new(other_cost));

    let mut base = base;
    let handle = base.register_matrix(Arc::clone(&a), STRIPE).unwrap();
    let reference = base.plan_cache_key(handle, Algorithm::TwoFace, 16).unwrap();

    // Identical configuration reproduces the key (stability).
    let mut twin = SpmmService::new(config());
    let twin_handle = twin.register_matrix(Arc::clone(&a), STRIPE).unwrap();
    assert_eq!(twin.plan_cache_key(twin_handle, Algorithm::TwoFace, 16).unwrap(), reference);

    // Any differing execution option must change the key.
    for mut service in variants {
        let h = service.register_matrix(Arc::clone(&a), STRIPE).unwrap();
        assert_ne!(
            service.plan_cache_key(h, Algorithm::TwoFace, 16).unwrap(),
            reference,
            "differing options must key differently"
        );
    }

    // K, the algorithm's plan flavor, and the matrix itself key too.
    assert_ne!(base.plan_cache_key(handle, Algorithm::TwoFace, 32).unwrap(), reference);
    assert_ne!(base.plan_cache_key(handle, Algorithm::AsyncFine, 16).unwrap(), reference);
    let other = base.register_matrix(matrix(7), STRIPE).unwrap();
    assert_ne!(base.plan_cache_key(other, Algorithm::TwoFace, 16).unwrap(), reference);
}

#[test]
fn batched_requests_are_bit_identical_to_solo_runs() {
    let a = matrix(11);
    let panels: Vec<_> = (0..3).map(|i| dense(8, 20 + i)).collect();

    // Solo: one request per drain, nothing to fuse with.
    let mut solo = SpmmService::new(config());
    let sh = solo.register_matrix(Arc::clone(&a), STRIPE).unwrap();
    let solo_outputs: Vec<DenseMatrix> = panels
        .iter()
        .map(|b| solo.run_one(SpmmRequest::new(sh, Arc::clone(b))).unwrap().output.unwrap())
        .collect();

    // Batched: all three queued, drained together.
    let mut batched = SpmmService::new(config());
    let bh = batched.register_matrix(a, STRIPE).unwrap();
    let ids: Vec<_> = panels
        .iter()
        .map(|b| batched.submit(SpmmRequest::new(bh, Arc::clone(b))).unwrap())
        .collect();
    let responses = batched.drain();
    assert_eq!(responses.len(), 3);

    for ((response, id), solo_output) in responses.iter().zip(&ids).zip(&solo_outputs) {
        assert_eq!(response.request, *id, "responses come back in submission order");
        assert_eq!(response.batch_size, 3, "all three requests fused into one execution");
        assert_eq!(
            response.output.as_ref().unwrap().as_slice(),
            solo_output.as_slice(),
            "batched output must match the solo run bitwise"
        );
    }
    assert_eq!(batched.metrics().counter("serve.batches"), 1);
    // One plan build serves the whole batch (and the solo service paid one
    // build plus two hits for the same traffic).
    assert_eq!(batched.cache_stats().misses, 1);
    assert_eq!(solo.cache_stats().hits, 2);
}

/// The request-level sketches (ISSUE 9): per-request simulated latency and
/// submit-time queue depth feed mergeable histograms, readable as quantiles
/// through [`SessionDigest`] — all derived from simulated time, so the
/// digest is deterministic.
#[test]
fn latency_and_queue_depth_sketches_summarize_the_session() {
    let mut service = SpmmService::new(config());
    let h = service.register_matrix(matrix(17), STRIPE).unwrap();
    assert!(service.latency_sketch().is_none(), "no requests, no sketch");
    assert_eq!(service.session_digest().requests, 0);

    let panels: Vec<_> = (0..4).map(|i| dense(8, 60 + i)).collect();
    for b in &panels {
        service.submit(SpmmRequest::new(h, Arc::clone(b))).unwrap();
    }
    service.drain();

    let latency = service.latency_sketch().expect("completed requests recorded latency");
    assert_eq!(latency.count(), 4);
    let depth = service.queue_depth_sketch().expect("each submit sampled the queue");
    assert_eq!(depth.count(), 4);
    assert_eq!(depth.max(), Some(4), "the queue reached all four waiting requests");

    let digest = service.session_digest();
    assert_eq!(digest.requests, 4);
    assert!(digest.latency_ns_p50 > 0.0);
    assert!(digest.latency_ns_p50 <= digest.latency_ns_p95);
    assert!(digest.latency_ns_p95 <= digest.latency_ns_p99);
    assert_eq!(digest.queue_depth_max, 4);

    // Determinism: an identical session produces the identical digest.
    let mut replay = SpmmService::new(config());
    let rh = replay.register_matrix(matrix(17), STRIPE).unwrap();
    for b in &panels {
        replay.submit(SpmmRequest::new(rh, Arc::clone(b))).unwrap();
    }
    replay.drain();
    assert_eq!(replay.session_digest(), digest);
}

#[test]
fn batched_bit_identity_holds_under_chaos() {
    let a = matrix(13);
    let panels: Vec<_> = (0..3).map(|i| dense(8, 40 + i)).collect();
    let chaos = Some(FaultPlan::light(99));

    let mut solo_config = config();
    solo_config.fault_plan = chaos.clone();
    let mut solo = SpmmService::new(solo_config);
    let sh = solo.register_matrix(Arc::clone(&a), STRIPE).unwrap();
    let solo_outputs: Vec<DenseMatrix> = panels
        .iter()
        .map(|b| solo.run_one(SpmmRequest::new(sh, Arc::clone(b))).unwrap().output.unwrap())
        .collect();

    let mut batched_config = config();
    batched_config.fault_plan = chaos;
    let mut batched = SpmmService::new(batched_config);
    let bh = batched.register_matrix(a, STRIPE).unwrap();
    for b in &panels {
        batched.submit(SpmmRequest::new(bh, Arc::clone(b))).unwrap();
    }
    for (response, solo_output) in batched.drain().iter().zip(&solo_outputs) {
        assert_eq!(
            response.output.as_ref().unwrap().as_slice(),
            solo_output.as_slice(),
            "recovered faulted runs stay bit-identical, batched or not"
        );
    }
}

#[test]
fn requests_with_different_widths_do_not_fuse_and_budgets_split_batches() {
    let mut narrow_budget = config();
    narrow_budget.max_k_per_batch = 16;
    let mut service = SpmmService::new(narrow_budget);
    let a = service.register_matrix(matrix(17), STRIPE).unwrap();

    // Three K=8 requests under a 16-column budget: two fuse, one spills.
    for i in 0..3 {
        service.submit(SpmmRequest::new(a, dense(8, 60 + i))).unwrap();
    }
    // A K=4 request never fuses with the K=8s (different width).
    service.submit(SpmmRequest::new(a, dense(4, 70))).unwrap();

    let responses = service.drain();
    let sizes: Vec<usize> = responses.iter().map(|r| r.batch_size).collect();
    assert_eq!(sizes, vec![2, 2, 1, 1]);
    assert_eq!(service.metrics().counter("serve.batches"), 3);
    // Same matrix, same options, same K=8: the spilled batch reuses the
    // fused batch's artifact.
    assert_eq!(service.cache_stats().hits, 1);
    assert_eq!(service.cache_stats().misses, 2);
}

#[test]
fn lru_eviction_is_driven_by_the_byte_budget() {
    // Size one artifact first so the real budget holds one entry.
    let mut probe = SpmmService::new(config());
    let h = probe.register_matrix(matrix(21), STRIPE).unwrap();
    probe.run_one(SpmmRequest::new(h, dense(8, 1))).unwrap();
    let one_artifact = probe.cache_stats().bytes;
    assert!(one_artifact > 0);

    let mut tight = config();
    tight.cache_budget_bytes = one_artifact + one_artifact / 2;
    let mut service = SpmmService::new(tight);
    let first = service.register_matrix(matrix(21), STRIPE).unwrap();
    let second = service.register_matrix(matrix(22), STRIPE).unwrap();

    service.run_one(SpmmRequest::new(first, dense(8, 1))).unwrap();
    // Similar matrix, similar artifact size: inserting it evicts `first`.
    service.run_one(SpmmRequest::new(second, dense(8, 2))).unwrap();
    let evicted = service.cache_stats().evictions;
    assert!(evicted >= 1, "the second artifact must push out the first");
    assert_eq!(service.metrics().counter("serve.cache.evictions"), evicted);

    // Re-requesting the first matrix misses again.
    let again = service.run_one(SpmmRequest::new(first, dense(8, 1))).unwrap();
    assert_eq!(again.cache_hit, Some(false));
    assert!(service.cache_stats().bytes <= service.cache_stats().budget_bytes);
}

#[test]
fn fallback_degrades_to_allgather_after_transfer_timeouts() {
    let mut degraded = config();
    // Every one-sided attempt fails: Two-Face can never finish, and every
    // reseeded retry fails the same way. Allgather uses no one-sided gets.
    degraded.fault_plan = Some(FaultPlan::seeded(3).with_get_failure_rate(1.0));
    degraded.retry_budget = 1;
    let mut service = SpmmService::new(degraded);
    let a = service.register_matrix(matrix(31), STRIPE).unwrap();

    // Async Fine is all one-sided gets, so a 100% get-failure network can
    // never complete it.
    let response = service
        .run_one(SpmmRequest { matrix: a, b: dense(8, 5), algorithm: Algorithm::AsyncFine })
        .unwrap();
    assert!(response.fell_back, "the planned algorithm kept timing out");
    assert_eq!(response.algorithm, Algorithm::Allgather);
    assert!(response.output.is_ok(), "the fallback serves the request");
    assert!(response.attempts >= 3, "original + retry + fallback, got {}", response.attempts);
    assert_eq!(service.metrics().counter("serve.fallbacks"), 1);
    assert!(service.metrics().counter("serve.retries") >= 1);

    let phases: Vec<SessionPhase> = service.timeline().iter().map(|e| e.phase).collect();
    assert!(phases.contains(&SessionPhase::Retry));
    assert!(phases.contains(&SessionPhase::Fallback));
    assert!(phases.contains(&SessionPhase::Execute));
}

#[test]
fn exhausted_retries_surface_typed_errors_when_fallback_is_off() {
    let mut degraded = config();
    degraded.fault_plan = Some(FaultPlan::seeded(3).with_get_failure_rate(1.0));
    degraded.retry_budget = 1;
    degraded.fallback = false;
    let mut service = SpmmService::new(degraded);
    let a = service.register_matrix(matrix(31), STRIPE).unwrap();

    let response = service
        .run_one(SpmmRequest { matrix: a, b: dense(8, 5), algorithm: Algorithm::AsyncFine })
        .unwrap();
    assert!(!response.fell_back);
    match response.output {
        Err(ServeError::Run { attempts, source: RunError::TransferTimeout { .. }, .. }) => {
            assert_eq!(attempts, 2, "one original attempt plus one retry");
        }
        other => panic!("expected a typed transfer-timeout failure, got {other:?}"),
    }
    assert_eq!(service.metrics().counter("serve.requests_failed"), 1);
}

#[test]
fn submit_validates_handles_and_shapes() {
    let mut service = SpmmService::new(config());
    let a = service.register_matrix(matrix(41), STRIPE).unwrap();

    service
        .submit(SpmmRequest { matrix: a, b: dense(8, 1), algorithm: Algorithm::TwoFace })
        .expect("a valid request is accepted");

    // Wrong B height.
    let short = Arc::new(DenseMatrix::from_fn(N / 2, 8, |_, _| 1.0));
    match service.submit(SpmmRequest { matrix: a, b: short, algorithm: Algorithm::TwoFace }) {
        Err(ServeError::Shape { context }) => assert!(context.contains("but B is"), "{context}"),
        other => panic!("expected a shape error, got {other:?}"),
    }

    // Unknown handle: a handle from a different service.
    let mut fresh = SpmmService::new(config());
    match fresh.submit(SpmmRequest { matrix: a, b: dense(8, 1), algorithm: Algorithm::TwoFace }) {
        Err(ServeError::UnknownMatrix { handle }) => assert_eq!(handle, a.id()),
        other => panic!("expected an unknown-matrix error, got {other:?}"),
    }

    // Infeasible registration: more ranks than rows.
    let tiny = Arc::new(erdos_renyi(2, 2, 2, 1));
    match fresh.register_matrix(tiny, 1) {
        Err(ServeError::Shape { .. }) => {}
        other => panic!("expected a shape error at registration, got {other:?}"),
    }
}

#[test]
fn the_session_timeline_narrates_the_run_and_exports_jsonl() {
    let mut service = SpmmService::new(config());
    let a = service.register_matrix(matrix(51), STRIPE).unwrap();
    service.run_one(SpmmRequest::new(a, dense(8, 1))).unwrap();
    service.run_one(SpmmRequest::new(a, dense(8, 2))).unwrap();

    let phases: Vec<SessionPhase> = service.timeline().iter().map(|e| e.phase).collect();
    for expected in [
        SessionPhase::Register,
        SessionPhase::Prepare,
        SessionPhase::CacheHit,
        SessionPhase::Execute,
        SessionPhase::Reset,
    ] {
        assert!(phases.contains(&expected), "missing {expected:?} in {phases:?}");
    }

    // Execute events span simulated time; the session clock is cumulative.
    let executes: Vec<_> =
        service.timeline().iter().filter(|e| e.phase == SessionPhase::Execute).collect();
    assert_eq!(executes.len(), 2);
    assert!(executes[0].sim_end_seconds > executes[0].sim_start_seconds);
    assert!(executes[1].sim_start_seconds >= executes[0].sim_end_seconds);
    assert!((service.sim_seconds() - executes[1].sim_end_seconds).abs() < 1e-12);

    // Every line of the export is a standalone JSON object.
    let jsonl = timeline_jsonl(service.timeline());
    assert_eq!(jsonl.lines().count(), service.timeline().len());
    for line in jsonl.lines() {
        let value: serde::Value = serde_json::from_str(line).unwrap();
        let entries = value.as_object().expect("each line is a JSON object");
        for field in ["phase", "seq", "sim_start_seconds", "detail"] {
            assert!(entries.iter().any(|(k, _)| k == field), "missing {field} in {line}");
        }
    }

    // Sequence numbers are the timeline order.
    let seqs: Vec<u64> = service.timeline().iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
}

#[test]
fn reset_session_drops_cached_plans_but_keeps_history() {
    let mut service = SpmmService::new(config());
    let a = service.register_matrix(matrix(61), STRIPE).unwrap();
    service.run_one(SpmmRequest::new(a, dense(8, 1))).unwrap();
    assert_eq!(service.cache_stats().entries, 1);

    service.reset_session();
    assert_eq!(service.cache_stats().entries, 0);
    assert_eq!(service.cache_stats().misses, 1, "history survives the reset");

    // The service keeps working afterwards — cold again, so a miss.
    let after = service.run_one(SpmmRequest::new(a, dense(8, 2))).unwrap();
    assert_eq!(after.cache_hit, Some(false));
}

#[test]
fn non_plan_algorithms_batch_but_bypass_the_cache() {
    let mut service = SpmmService::new(config());
    let a = service.register_matrix(matrix(71), STRIPE).unwrap();
    for i in 0..2 {
        service
            .submit(SpmmRequest { matrix: a, b: dense(8, 80 + i), algorithm: Algorithm::Allgather })
            .unwrap();
    }
    let responses = service.drain();
    assert_eq!(responses.len(), 2);
    for r in &responses {
        assert_eq!(r.cache_hit, None, "no plan, no cache");
        assert_eq!(r.batch_size, 2);
        assert!(r.output.is_ok());
    }
    assert_eq!(service.cache_stats().misses, 0);
}

/// ISSUE 10, satellite: batch formation must not be sensitive to arrival
/// interleaving. Under the default key-grouped policy, any permutation of
/// the same request set produces the same number of executions and —
/// like every policy — outputs bitwise equal to solo runs.
#[test]
fn batch_formation_is_arrival_order_insensitive() {
    let a1 = matrix(81);
    let a2 = matrix(82);
    // Three fusion keys: (a1, k=8) x3, (a2, k=8) x2, (a1, k=16) x2.
    let specs: Vec<(usize, usize, u64)> =
        vec![(0, 8, 90), (0, 8, 91), (0, 8, 92), (1, 8, 93), (1, 8, 94), (0, 16, 95), (0, 16, 96)];
    let orders: Vec<Vec<usize>> = vec![
        (0..specs.len()).collect(),
        (0..specs.len()).rev().collect(),
        vec![3, 0, 5, 1, 4, 6, 2], // fully interleaved across keys
    ];

    let tight = || {
        let mut cfg = config();
        cfg.max_k_per_batch = 32; // chunks: 4 at k=8, 2 at k=16
        cfg
    };

    // Solo reference bits per spec.
    let mut solo = SpmmService::new(tight());
    let handles = [
        solo.register_matrix(Arc::clone(&a1), STRIPE).unwrap(),
        solo.register_matrix(Arc::clone(&a2), STRIPE).unwrap(),
    ];
    let reference: Vec<DenseMatrix> = specs
        .iter()
        .map(|&(m, k, seed)| {
            solo.run_one(SpmmRequest::new(handles[m], dense(k, seed))).unwrap().output.unwrap()
        })
        .collect();

    let mut batch_counts = Vec::new();
    for order in &orders {
        let mut service = SpmmService::new(tight());
        let h = [
            service.register_matrix(Arc::clone(&a1), STRIPE).unwrap(),
            service.register_matrix(Arc::clone(&a2), STRIPE).unwrap(),
        ];
        let ids: Vec<_> = order
            .iter()
            .map(|&at| {
                let (m, k, seed) = specs[at];
                (at, service.submit(SpmmRequest::new(h[m], dense(k, seed))).unwrap())
            })
            .collect();
        let responses = service.drain();
        assert_eq!(responses.len(), specs.len());
        for (at, id) in ids {
            let response = responses.iter().find(|r| r.request == id).unwrap();
            assert_eq!(
                response.output.as_ref().unwrap().as_slice(),
                reference[at].as_slice(),
                "order {order:?}, spec {at}: batched output must match solo bitwise"
            );
        }
        batch_counts.push(service.metrics().counter("serve.batches"));
    }
    assert!(
        batch_counts.windows(2).all(|w| w[0] == w[1]),
        "key-grouped formation fuses identically under every arrival order: {batch_counts:?}"
    );

    // The legacy first-fit policy may form different batch sequences per
    // order, but its outputs keep the bit-identity contract.
    for order in &orders {
        let mut cfg = tight();
        cfg.batch_policy = twoface_serve::BatchPolicy::FirstFit;
        let mut service = SpmmService::new(cfg);
        let h = [
            service.register_matrix(Arc::clone(&a1), STRIPE).unwrap(),
            service.register_matrix(Arc::clone(&a2), STRIPE).unwrap(),
        ];
        let ids: Vec<_> = order
            .iter()
            .map(|&at| {
                let (m, k, seed) = specs[at];
                (at, service.submit(SpmmRequest::new(h[m], dense(k, seed))).unwrap())
            })
            .collect();
        let responses = service.drain();
        for (at, id) in ids {
            let response = responses.iter().find(|r| r.request == id).unwrap();
            assert_eq!(
                response.output.as_ref().unwrap().as_slice(),
                reference[at].as_slice(),
                "first-fit, order {order:?}, spec {at}: outputs stay bit-identical"
            );
        }
    }
}
