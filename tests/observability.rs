//! Integration suite for the observability layer: the per-operation event
//! recorder, the exporters, the metrics registry, and the `TWOFACE_TRACE`
//! environment knob.
//!
//! The load-bearing properties:
//!
//! * **Off by default, free when off** — a default run records nothing.
//! * **Coverage** — at `TraceLevel::Full` with no sampling, the event stream
//!   is a second, independent accounting of the run: per-class durations sum
//!   to the aggregate [`RankTrace`] seconds and the event-derived Figure-10
//!   breakdown matches the report's.
//! * **Determinism** — chaos-seeded traced runs produce bitwise-identical
//!   event streams across replays *and* real-worker counts; host wall-time
//!   is segregated so it can never leak into comparisons.
//!
//! Every test here serializes on one lock: `TWOFACE_TRACE` is process-global
//! state read by every `run_algorithm` call, so a concurrently running env
//! test would promote its siblings' runs to full tracing.

use serde::Value;
use std::sync::{Arc, Mutex, MutexGuard};
use twoface_core::{run_algorithm, Algorithm, Breakdown, ExecutionReport, Problem, RunOptions};
use twoface_matrix::gen::{webcrawl, WebcrawlConfig};
use twoface_net::{
    export, seconds_by_class, CostModel, FaultPlan, Observability, OpKind, PhaseClass,
    ProfileSummary, RetryPolicy, FLIGHT_CAPACITY_DEFAULT,
};

/// Serializes the whole file: see the module docs.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Relative tolerance for event-vs-aggregate comparisons: the two systems
/// round independently (one addition vs two per operation).
fn assert_close(a: f64, b: f64, what: &str) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1e-30);
    assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
}

/// The chaos fixture: dense stripes (multicasts) plus sparse scatter
/// (one-sided gets), so both lanes produce events.
fn fixture() -> Problem {
    let a = webcrawl(
        &WebcrawlConfig { n: 512, hosts: 16, per_row: 6, intra_host: 0.7, ..Default::default() },
        31,
    );
    Problem::with_generated_b(Arc::new(a), 8, 4, 32).expect("fixture is valid")
}

fn traced(observability: Observability) -> RunOptions {
    RunOptions { compute_values: false, observability, ..Default::default() }
}

fn run(problem: &Problem, options: &RunOptions) -> ExecutionReport {
    run_algorithm(Algorithm::TwoFace, problem, &CostModel::delta_scaled(), options)
        .expect("fixture runs recover")
}

/// A traced chaos run whose heavy plan actually forced at least one retry
/// (small fixtures can draw zero failures for some seeds, so scan).
fn chaotic_run(problem: &Problem, workers: Option<usize>) -> (RunOptions, ExecutionReport) {
    for seed in 0xC4A05u64.. {
        let options = RunOptions {
            fault_plan: Some(FaultPlan::heavy(seed)),
            workers,
            ..traced(Observability::full())
        };
        let report = run(problem, &options);
        if report.rank_traces.iter().map(|t| t.retries).sum::<u64>() > 0 {
            return (options, report);
        }
        assert!(seed < 0xC4A05 + 64, "no heavy seed in a 64-seed scan injected a retry");
    }
    unreachable!("the scan either returns or panics")
}

#[test]
fn tracing_is_off_by_default() {
    let _guard = lock();
    let problem = fixture();
    let report = run(&problem, &RunOptions { compute_values: false, ..Default::default() });
    assert!(report.rank_events.iter().all(Vec::is_empty), "default runs must record no events");
    assert!(report.metrics.is_empty(), "default runs must record no metrics");
    assert!(!RunOptions::default().observability.enabled());
}

/// The coverage invariant: at `Full` with no sampling, the event stream
/// independently reproduces the aggregate accounting — per-class seconds,
/// per-rank finish times, and the critical rank's Figure-10 breakdown.
#[test]
fn full_trace_covers_the_aggregate_accounting() {
    let _guard = lock();
    let problem = fixture();
    let report = run(&problem, &traced(Observability::full()));
    assert_eq!(report.rank_events.len(), report.p);
    for (rank, (events, trace)) in report.rank_events.iter().zip(&report.rank_traces).enumerate() {
        assert!(!events.is_empty(), "rank {rank} recorded nothing at Full");
        let from_events = seconds_by_class(events);
        for (class, (e, t)) in
            PhaseClass::ALL.iter().zip(from_events.iter().zip(&trace.class_seconds()))
        {
            assert_close(*e, *t, &format!("rank {rank} {}", class.label()));
        }
        let finish = events.iter().map(|e| e.end_seconds).fold(0.0, f64::max);
        assert_close(finish, report.rank_seconds[rank], &format!("rank {rank} finish"));
        // Without `wall_time` no event may carry host time.
        assert!(events.iter().all(|e| e.wall_nanos.is_none()));
    }
    let derived = Breakdown::from_events(&report.rank_events[report.critical_rank]);
    let aggregate = &report.critical_breakdown;
    assert_close(derived.sync_comm, aggregate.sync_comm, "sync_comm");
    assert_close(derived.sync_comp, aggregate.sync_comp, "sync_comp");
    assert_close(derived.async_comm, aggregate.async_comm, "async_comm");
    assert_close(derived.async_comp, aggregate.async_comp, "async_comp");
    assert_close(derived.other, aggregate.other, "other");
    assert_close(derived.total(), aggregate.total(), "total");
    assert!(
        report.rank_events.iter().flatten().any(|e| e.kind == OpKind::Kernel),
        "Full level must include local kernel spans"
    );
}

/// `Comm` level drops kernel spans (so the stream undercounts compute) but
/// still fills the metrics registry with the diagnostic distributions.
#[test]
fn comm_level_skips_kernels_but_keeps_metrics() {
    let _guard = lock();
    let problem = fixture();
    let report = run(&problem, &traced(Observability::comm()));
    assert!(report.rank_events.iter().flatten().all(|e| e.kind != OpKind::Kernel));

    let m = &report.metrics;
    assert!(m.counter("ops.multicast") > 0, "fixture schedules multicasts");
    assert!(m.counter("ops.rget_rows") > 0, "fixture issues fine-grained gets");
    let one_sided = m.counter("ops.get") + m.counter("ops.rget_rows");
    let sizes = m.histogram("one_sided_get_elements").expect("get sizes recorded");
    assert_eq!(sizes.count(), one_sided, "one size sample per one-sided op");
    assert!(sizes.sum() > 0);
    let retries = m.histogram("retries_per_op").expect("retry counts recorded");
    assert_eq!(retries.count(), one_sided, "one retry sample per one-sided op");
    assert_eq!(retries.max(), Some(0), "no faults were installed");
    // Fan-out is sampled root-side only: one sample per distinct multicast,
    // while `ops.multicast` counts every participant (root and receivers).
    let fanout = m.histogram("multicast_fanout").expect("§7.2 fan-out recorded");
    let roots = report
        .rank_events
        .iter()
        .flatten()
        .filter(|e| e.kind == OpKind::Multicast && e.initiator)
        .count() as u64;
    assert_eq!(fanout.count(), roots, "one fan-out sample per root-side multicast");
    assert!(fanout.count() < m.counter("ops.multicast"), "receivers don't sample fan-out");
    assert_close(
        fanout.mean().expect("fan-out has samples"),
        report.mean_multicast_recipients.expect("fixture multicasts"),
        "fan-out histogram mean vs §7.2 aggregate",
    );
    let runs = m.histogram("rget_runs_per_op").expect("coalescing recorded");
    assert_eq!(runs.count(), m.counter("ops.rget_rows"));
    // The algorithm body's own metric: per-run coalesced lengths.
    let run_rows = m.histogram("coalesced_run_rows").expect("run lengths recorded");
    assert_eq!(run_rows.count(), runs.sum(), "one length sample per coalesced run");
    assert!(m.histogram("meet_arrival_spread_ns").is_some());
}

/// The determinism contract under chaos: the same heavy fault plan yields
/// byte-identical event streams and metrics across replays and across real
/// worker counts, with recovery visible in the events.
#[test]
fn chaos_streams_are_bitwise_identical_across_replays_and_workers() {
    let _guard = lock();
    let problem = fixture();
    let (options, first) = chaotic_run(&problem, Some(2));
    let replay = run(&problem, &options);
    let narrow = run(&problem, &RunOptions { workers: Some(1), ..options.clone() });

    assert_eq!(first.rank_events, replay.rank_events, "replay changed the event stream");
    assert_eq!(first.rank_events, narrow.rank_events, "worker count changed the event stream");
    assert_eq!(first.metrics, replay.metrics);
    assert_eq!(first.metrics, narrow.metrics);
    let jsonl = export::events_jsonl(&first.rank_events, &first.rank_traces, false);
    assert_eq!(jsonl, export::events_jsonl(&replay.rank_events, &replay.rank_traces, false));
    assert_eq!(jsonl, export::events_jsonl(&narrow.rank_events, &narrow.rank_traces, false));

    assert!(first.faults_injected > 0);
    let events: Vec<_> = first.rank_events.iter().flatten().collect();
    assert!(events.iter().any(|e| e.kind == OpKind::Fault), "faults must appear as events");
    assert!(
        events.iter().any(|e| e.class == PhaseClass::Recovery),
        "retry backoff must appear as Recovery-class events"
    );
    assert!(first.metrics.histogram("retries_per_op").expect("recorded").max() > Some(0));
}

/// The Chrome export is valid JSON with one process per rank, named
/// per-class tracks, and fault instants on the dedicated track 0.
#[test]
fn chrome_export_is_valid_json_with_fault_instants() {
    let _guard = lock();
    let problem = fixture();
    let (_, report) = chaotic_run(&problem, None);
    let text = export::chrome_trace_json(&report.rank_events, false);
    let root: Value = serde_json::from_str(&text).expect("export is valid JSON");
    let events = root.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");

    // One process_name plus one thread_name per track (Faults + 6 classes).
    let metas = events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"));
    assert_eq!(metas.count(), report.p * (2 + PhaseClass::ALL.len()));
    let spans: Vec<&Value> =
        events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("X")).collect();
    assert!(!spans.is_empty());
    for span in &spans {
        for key in ["pid", "tid", "name", "cat", "ts", "dur", "args"] {
            assert!(span.get(key).is_some(), "span missing `{key}`");
        }
    }
    let fault_instants: Vec<&Value> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Value::as_str) == Some("i")
                && e.get("tid").and_then(Value::as_u64) == Some(0)
        })
        .collect();
    assert_eq!(
        fault_instants.len() as u64,
        report.faults_injected,
        "every injected fault must appear as an instant on the Faults track"
    );
}

/// Wall-time is opt-in, segregated, and stripped by the exporters: two runs
/// whose kernels took different host time still export identical streams.
#[test]
fn wall_time_is_segregated_from_deterministic_exports() {
    let _guard = lock();
    let problem = fixture();
    let options = RunOptions {
        observability: Observability { wall_time: true, ..Observability::full() },
        ..Default::default() // compute_values on: kernels really run
    };
    let a = run(&problem, &options);
    let b = run(&problem, &options);
    let timed =
        |r: &ExecutionReport| r.rank_events.iter().flatten().any(|e| e.wall_nanos.is_some());
    assert!(timed(&a) && timed(&b), "wall_time must stamp real kernel spans");
    // Host timings differ run to run, but the deterministic export does not.
    let strip = |r: &ExecutionReport| export::events_jsonl(&r.rank_events, &r.rank_traces, false);
    assert_eq!(strip(&a), strip(&b));
    let parsed = export::parse_events_jsonl(&strip(&a)).expect("round-trips");
    assert!(parsed.events_by_rank.iter().flatten().all(|e| e.wall_nanos.is_none()));
    // With include_wall the stamps survive the round-trip.
    let kept =
        export::parse_events_jsonl(&export::events_jsonl(&a.rank_events, &a.rank_traces, true))
            .expect("round-trips");
    assert_eq!(kept.events_by_rank, a.rank_events);
    assert_eq!(kept.traces, a.rank_traces);
}

/// Sampling keeps every `sample_every`-th candidate with its original `seq`,
/// so a sampled stream is exactly the unsampled stream filtered.
#[test]
fn sampling_thins_the_stream_preserving_sequence_numbers() {
    let _guard = lock();
    let problem = fixture();
    let full = run(&problem, &traced(Observability::full()));
    let sampled =
        run(&problem, &traced(Observability { sample_every: 4, ..Observability::full() }));
    let mut kept_fewer = false;
    for (rank, (full_events, sampled_events)) in
        full.rank_events.iter().zip(&sampled.rank_events).enumerate()
    {
        let expected: Vec<_> = full_events.iter().filter(|e| e.seq % 4 == 0).cloned().collect();
        assert_eq!(
            sampled_events, &expected,
            "rank {rank}: sampled stream must be the filtered full stream"
        );
        kept_fewer |= sampled_events.len() < full_events.len();
    }
    assert!(kept_fewer, "sampling at 4 must drop events somewhere");
}

/// Removes the observability env knobs even if the test panics, so a
/// failure here cannot corrupt the other tests' runs.
struct EnvGuard;
impl Drop for EnvGuard {
    fn drop(&mut self) {
        std::env::remove_var(twoface_core::TRACE_ENV);
        std::env::remove_var(twoface_core::PROFILE_ENV);
    }
}

/// `TWOFACE_TRACE=<path>` promotes an untraced run to `Full` and writes the
/// stream after the run; later runs in the same process get unique suffixes
/// instead of clobbering the first file.
#[test]
fn trace_env_promotes_recording_and_writes_unique_files() {
    let _guard = lock();
    let dir = std::env::temp_dir().join(format!("twoface_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    let path = dir.join("trace.jsonl");
    std::env::set_var(twoface_core::TRACE_ENV, &path);
    let _env = EnvGuard;

    let problem = fixture();
    let options = RunOptions { compute_values: false, ..Default::default() };
    let report = run(&problem, &options);
    assert!(
        report.rank_events.iter().all(|e| !e.is_empty()),
        "the env knob must promote recording to Full"
    );
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let parsed = export::parse_events_jsonl(&text).expect("written trace parses");
    assert_eq!(parsed.events_by_rank, report.rank_events);
    assert_eq!(parsed.traces, report.rank_traces);

    // A second traced run must not clobber the first destination.
    run(&problem, &options);
    let second = dir.join("trace.1.jsonl");
    assert!(second.exists(), "second run should write {}", second.display());
    export::parse_events_jsonl(&std::fs::read_to_string(&second).expect("readable"))
        .expect("suffixed trace parses");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `TWOFACE_PROFILE=<path>` promotes an untraced run to `Comm` and leaves a
/// `ProfileSummary` artifact behind; a second run in the same process folds
/// into the *same* artifact (one merged profile per destination, so
/// multi-run bench binaries produce one blessable sidecar).
#[test]
fn profile_env_writes_a_merged_blessable_artifact() {
    let _guard = lock();
    let dir = std::env::temp_dir().join(format!("twoface_prof_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    let path = dir.join("run.profile.json");
    std::env::set_var(twoface_core::PROFILE_ENV, &path);
    let _env = EnvGuard;

    let problem = fixture();
    let options = RunOptions { compute_values: false, ..Default::default() };
    let report = run(&problem, &options);
    assert!(
        report.rank_events.iter().all(|e| !e.is_empty()),
        "the profile knob must promote recording"
    );
    let text = std::fs::read_to_string(&path).expect("profile artifact written");
    let one = ProfileSummary::from_json(&text).expect("artifact validates");
    assert_eq!((one.runs, one.ranks), (1, report.p));
    assert!(!one.cells.is_empty());
    assert_close(
        one.total_seconds(),
        ProfileSummary::from_events(&report.rank_events).total_seconds(),
        "artifact matches the run's own events",
    );

    // Second run: same destination, merged in place — not a suffixed file.
    run(&problem, &options);
    let merged = ProfileSummary::from_json(&std::fs::read_to_string(&path).expect("readable"))
        .expect("merged artifact validates");
    assert_eq!(merged.runs, 2);
    for cell in &one.cells {
        let m = merged.cell(cell.class, cell.kind).expect("cell survives the merge");
        assert_eq!(m.events, cell.events * 2, "{}: deterministic runs double", cell.label());
    }
    assert_close(merged.total_seconds(), 2.0 * one.total_seconds(), "seconds accumulate");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (b): a corrupted trace file produces a typed [`export::ParseError`]
/// naming the failing line — never a panic.
#[test]
fn corrupted_trace_file_is_a_typed_error_naming_the_line() {
    let _guard = lock();
    let problem = fixture();
    let report = run(&problem, &traced(Observability::full()));
    let jsonl = export::events_jsonl(&report.rank_events, &report.rank_traces, false);

    // Truncate the third line mid-record, as a half-written file would.
    let mut lines: Vec<String> = jsonl.lines().map(str::to_string).collect();
    assert!(lines.len() > 3, "fixture stream is long enough to corrupt");
    let half = lines[2].len() / 2;
    lines[2].truncate(half);
    let corrupted = lines.join("\n");
    let dir = std::env::temp_dir().join(format!("twoface_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    let file = dir.join("corrupted.jsonl");
    std::fs::write(&file, &corrupted).expect("can write fixture");

    let err = export::parse_events_jsonl(&std::fs::read_to_string(&file).expect("readable"))
        .expect_err("a truncated record must not parse");
    assert_eq!(err.line, Some(3), "the error names the corrupted line: {err}");
    assert!(!err.message.is_empty());
    assert!(err.to_string().contains("line 3"), "Display carries the line: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The always-on flight recorder: with tracing fully off, a run that dies
/// of an exhausted retry budget still carries the last comm ops in its
/// error context, bounded by the default ring capacity.
#[test]
fn run_errors_carry_the_flight_tail_with_tracing_off() {
    let _guard = lock();
    let problem = fixture();
    let plan = FaultPlan::seeded(0xF11)
        .with_get_failure_rate(1.0)
        .with_retry(RetryPolicy { max_attempts: 3, ..Default::default() });
    let options =
        RunOptions { compute_values: false, fault_plan: Some(plan), ..Default::default() };
    let err = run_algorithm(Algorithm::AsyncFine, &problem, &CostModel::delta_scaled(), &options)
        .expect_err("every get fails forever");
    let flight = err.flight();
    assert!(!flight.is_empty(), "the ring records even at TraceLevel::Off");
    assert!(flight.len() <= FLIGHT_CAPACITY_DEFAULT);
    assert!(
        flight.iter().any(|e| matches!(e.kind, OpKind::Get | OpKind::Retry)),
        "the tail shows the failing one-sided traffic: {flight:?}"
    );
    assert!(
        flight.iter().any(|e| e.fault.is_some()),
        "the injected failure is visible in the tail: {flight:?}"
    );
    let text = err.to_string();
    assert!(text.contains("[flight recorder"), "Display dumps the tail: {text}");
}
