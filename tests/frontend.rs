//! Integration tests of the multi-tenant serving front-end: the admission
//! ladder's typed rejections, deadline-aware batch formation, deficit-
//! round-robin fairness, the threaded scheduler, and the chaos acceptance
//! scenario (bit-identity vs solo runs, deterministic across worker
//! counts).

use std::error::Error;
use std::sync::Arc;

use twoface_core::Algorithm;
use twoface_frontend::{
    AsyncFrontend, CloseReason, Frontend, FrontendConfig, FrontendError, FrontendPhase,
    FrontendRequest, FrontendResponse, RejectReason, TenantQuota,
};
use twoface_matrix::gen::erdos_renyi;
use twoface_matrix::DenseMatrix;
use twoface_net::{CostModel, FaultPlan, PhaseClass};
use twoface_serve::{MatrixHandle, ServeConfig, ServeError, SpmmRequest, SpmmService};

const N: usize = 256;
const P: usize = 4;
const STRIPE: usize = 16;

fn matrix(seed: u64) -> Arc<twoface_matrix::CooMatrix> {
    Arc::new(erdos_renyi(N, N, 6_000, seed))
}

fn dense(k: usize, seed: u64) -> Arc<DenseMatrix> {
    Arc::new(DenseMatrix::from_fn(N, k, |i, j| {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((j as u64).wrapping_mul(seed.wrapping_mul(2) | 1));
        let h = (h ^ (h >> 31)).wrapping_mul(0xD6E8FEB86659FD93);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }))
}

fn config() -> ServeConfig {
    ServeConfig::new(P, CostModel::delta_scaled())
}

/// A service with one registered matrix and a `max_k_per_batch` of
/// `max_k`, plus the handle.
fn service_with(max_k: usize, seed: u64) -> (SpmmService, MatrixHandle) {
    let mut cfg = config();
    cfg.max_k_per_batch = max_k;
    let mut service = SpmmService::new(cfg);
    let a = service.register_matrix(matrix(seed), STRIPE).unwrap();
    (service, a)
}

// ---------------------------------------------------------------------------
// Admission ladder: every rung rejects with its typed reason.
// ---------------------------------------------------------------------------

#[test]
fn global_queue_depth_rejections_are_typed() {
    let (service, a) = service_with(512, 1);
    let mut fe =
        Frontend::new(service, FrontendConfig { max_queue_depth: 4, ..FrontendConfig::default() });
    let t = fe.register_tenant("alpha", TenantQuota::unlimited()).unwrap();

    for seed in 0..4 {
        fe.submit(t, FrontendRequest::new(a, dense(8, seed))).unwrap();
    }
    let err = fe.submit(t, FrontendRequest::new(a, dense(8, 9))).unwrap_err();
    match err {
        FrontendError::Rejected { tenant, reason: RejectReason::QueueDepth { depth, limit } } => {
            assert_eq!((tenant.as_str(), depth, limit), ("alpha", 4, 4));
        }
        other => panic!("expected a QueueDepth rejection, got {other:?}"),
    }
    assert_eq!(fe.metrics().counter("frontend.rejected.queue_depth"), 1);
    assert!(
        fe.timeline()
            .iter()
            .any(|e| e.phase == FrontendPhase::Reject && e.class == PhaseClass::Recovery),
        "rejections join the timeline tagged as Recovery"
    );

    // The queue drains, so the same submission is admissible again.
    assert_eq!(fe.drain().len(), 4);
    fe.submit(t, FrontendRequest::new(a, dense(8, 9))).unwrap();
}

#[test]
fn tenant_queue_cap_rejections_are_typed_and_per_tenant() {
    let (service, a) = service_with(512, 1);
    let mut fe = Frontend::new(service, FrontendConfig::default());
    let capped = fe
        .register_tenant("capped", TenantQuota { max_queued: 2, max_in_flight_k: usize::MAX })
        .unwrap();
    let roomy = fe.register_tenant("roomy", TenantQuota::default()).unwrap();

    fe.submit(capped, FrontendRequest::new(a, dense(8, 0))).unwrap();
    fe.submit(capped, FrontendRequest::new(a, dense(8, 1))).unwrap();
    let err = fe.submit(capped, FrontendRequest::new(a, dense(8, 2))).unwrap_err();
    assert!(
        matches!(
            err,
            FrontendError::Rejected {
                reason: RejectReason::TenantQueue { queued: 2, limit: 2 },
                ..
            }
        ),
        "got {err:?}"
    );
    // The cap is the tenant's own: another tenant is unaffected.
    fe.submit(roomy, FrontendRequest::new(a, dense(8, 3))).unwrap();

    assert_eq!(fe.metrics().counter_labeled("frontend.rejected", ("tenant", "capped")), 1);
    assert_eq!(fe.metrics().counter_labeled("frontend.rejected", ("tenant", "roomy")), 0);

    // Draining frees the quota.
    fe.drain();
    fe.submit(capped, FrontendRequest::new(a, dense(8, 2))).unwrap();
}

#[test]
fn tenant_k_budget_rejections_recover_after_completion() {
    let (service, a) = service_with(512, 1);
    let mut fe = Frontend::new(service, FrontendConfig::default());
    let t = fe
        .register_tenant("alpha", TenantQuota { max_queued: usize::MAX, max_in_flight_k: 16 })
        .unwrap();

    fe.submit(t, FrontendRequest::new(a, dense(8, 0))).unwrap();
    fe.submit(t, FrontendRequest::new(a, dense(8, 1))).unwrap();
    let err = fe.submit(t, FrontendRequest::new(a, dense(8, 2))).unwrap_err();
    match err {
        FrontendError::Rejected {
            reason: RejectReason::TenantKBudget { in_flight_k, requested_k, limit },
            ..
        } => assert_eq!((in_flight_k, requested_k, limit), (16, 8, 16)),
        other => panic!("expected a TenantKBudget rejection, got {other:?}"),
    }

    // Completion releases the columns; admission succeeds again.
    assert_eq!(fe.drain().len(), 2);
    fe.submit(t, FrontendRequest::new(a, dense(8, 2))).unwrap();
}

#[test]
fn plan_cache_pressure_spares_already_served_keys() {
    let (service, a) = service_with(512, 1);
    let budget = service.config().cache_budget_bytes;
    // A vanishingly small watermark: pressure engages as soon as any
    // artifact is resident, so the rung's behavior is observable without
    // hand-tuning artifact sizes.
    let mut fe = Frontend::new(
        service,
        FrontendConfig { cache_pressure: 1e-12, ..FrontendConfig::default() },
    );
    let t = fe.register_tenant("alpha", TenantQuota::unlimited()).unwrap();

    // Empty cache: below the watermark, a plan-building request admits.
    fe.submit(t, FrontendRequest::new(a, dense(16, 0))).unwrap();
    assert_eq!(fe.drain().len(), 1);
    assert!(fe.service().cache_stats().bytes > 0, "the artifact is resident");

    // Same key again: pressured, but the artifact already exists.
    fe.submit(t, FrontendRequest::new(a, dense(16, 1))).unwrap();

    // A novel plan-building key is refused with the typed reason...
    let err = fe.submit(t, FrontendRequest::new(a, dense(8, 2))).unwrap_err();
    match err {
        FrontendError::Rejected {
            reason: RejectReason::PlanCachePressure { cache_bytes, budget_bytes },
            ..
        } => {
            assert!(cache_bytes > 0);
            assert_eq!(budget_bytes, budget);
        }
        other => panic!("expected a PlanCachePressure rejection, got {other:?}"),
    }
    // ...and Auto counts as plan-building (it may resolve to a planned
    // algorithm), while a plan-less algorithm sails through.
    let auto = fe
        .submit(t, FrontendRequest::new(a, dense(8, 3)).with_algorithm(Algorithm::Auto))
        .unwrap_err();
    assert!(matches!(
        auto,
        FrontendError::Rejected { reason: RejectReason::PlanCachePressure { .. }, .. }
    ));
    fe.submit(t, FrontendRequest::new(a, dense(8, 4)).with_algorithm(Algorithm::Allgather))
        .unwrap();
}

#[test]
fn begin_drain_rejects_new_work_but_completes_queued() {
    let (service, a) = service_with(512, 1);
    let mut fe = Frontend::new(service, FrontendConfig::default());
    let t = fe.register_tenant("alpha", TenantQuota::default()).unwrap();

    fe.submit(t, FrontendRequest::new(a, dense(8, 0))).unwrap();
    fe.begin_drain();
    let err = fe.submit(t, FrontendRequest::new(a, dense(8, 1))).unwrap_err();
    assert!(
        matches!(err, FrontendError::Rejected { reason: RejectReason::Draining, .. }),
        "got {err:?}"
    );

    let responses = fe.drain();
    assert_eq!(responses.len(), 1, "queued work still completes during the drain");
    assert!(responses[0].output.is_ok());
}

#[test]
fn invalid_requests_are_errors_not_backpressure() {
    let (service, a) = service_with(512, 1);

    // A handle from a different service (with more matrices) is unknown
    // here.
    let mut other = SpmmService::new(config());
    other.register_matrix(matrix(2), STRIPE).unwrap();
    let foreign = other.register_matrix(matrix(3), STRIPE).unwrap();

    let mut fe = Frontend::new(service, FrontendConfig::default());
    let t = fe.register_tenant("alpha", TenantQuota::default()).unwrap();

    let err = fe.submit(t, FrontendRequest::new(foreign, dense(8, 0))).unwrap_err();
    match &err {
        FrontendError::Invalid { source: ServeError::UnknownMatrix { handle } } => {
            assert_eq!(*handle, foreign.id());
        }
        other => panic!("expected Invalid(UnknownMatrix), got {other:?}"),
    }
    assert!(err.source().is_some(), "Invalid chains to the serving error");

    let wrong_rows = Arc::new(DenseMatrix::from_fn(N / 2, 8, |i, j| (i + j) as f64));
    let err = fe.submit(t, FrontendRequest::new(a, wrong_rows)).unwrap_err();
    assert!(
        matches!(&err, FrontendError::Invalid { source: ServeError::Shape { .. } }),
        "got {err:?}"
    );

    // Neither malformed request consumed quota or counted as a rejection.
    assert_eq!(fe.metrics().counter("frontend.rejected"), 0);
    assert_eq!(fe.pending(), 0);
}

// ---------------------------------------------------------------------------
// Error type coverage (Display + source), RunError-precedent style.
// ---------------------------------------------------------------------------

#[test]
fn frontend_error_display_and_source_cover_every_variant() {
    let reasons: Vec<(RejectReason, &str)> = vec![
        (RejectReason::QueueDepth { depth: 4, limit: 4 }, "queue_depth"),
        (RejectReason::TenantQueue { queued: 2, limit: 2 }, "tenant_queue"),
        (
            RejectReason::TenantKBudget { in_flight_k: 16, requested_k: 8, limit: 16 },
            "tenant_k_budget",
        ),
        (
            RejectReason::PlanCachePressure { cache_bytes: 10, budget_bytes: 100 },
            "plan_cache_pressure",
        ),
        (RejectReason::Draining, "draining"),
    ];
    for (reason, label) in reasons {
        assert_eq!(reason.label(), label);
        assert!(!reason.to_string().is_empty());
        let err = FrontendError::Rejected { tenant: "alpha".into(), reason };
        let text = err.to_string();
        assert!(text.contains("alpha") && text.contains("rejected"), "{text}");
        assert!(err.source().is_none(), "backpressure has no source chain");
    }

    let err = FrontendError::UnknownTenant { name: "ghost".into() };
    assert!(err.to_string().contains("ghost"));
    assert!(err.source().is_none());

    let err = FrontendError::TenantExists { name: "alpha".into() };
    assert!(err.to_string().contains("already registered"));
    assert!(err.source().is_none());

    let err = FrontendError::Invalid { source: ServeError::UnknownMatrix { handle: 7 } };
    assert!(err.to_string().contains("invalid request"));
    let source = err.source().expect("Invalid exposes its ServeError");
    assert!(source.to_string().contains("handle 7"));

    let err = FrontendError::Disconnected;
    assert!(err.to_string().contains("scheduler"));
    assert!(err.source().is_none());
}

// ---------------------------------------------------------------------------
// Batch formation: deadlines, aging, K budget, fairness.
// ---------------------------------------------------------------------------

#[test]
fn deadline_pressure_closes_a_group_early() {
    let (service, a) = service_with(512, 1); // per_batch = 64 at k = 8
    let mut fe = Frontend::new(
        service,
        FrontendConfig { max_group_age_polls: None, ..FrontendConfig::default() },
    );
    let batch_tenant = fe.register_tenant("batch", TenantQuota::default()).unwrap();
    let urgent = fe.register_tenant("urgent", TenantQuota::default()).unwrap();

    for seed in 0..3 {
        fe.submit(batch_tenant, FrontendRequest::new(a, dense(8, seed))).unwrap();
    }
    assert!(fe.poll().is_empty(), "a quarter-full, deadline-less group keeps waiting");

    // One urgent member puts the whole group under deadline pressure.
    fe.submit(urgent, FrontendRequest::new(a, dense(8, 9)).with_slo(0.0)).unwrap();
    let responses = fe.poll();
    assert_eq!(responses.len(), 4, "the early close takes the whole group");
    for r in &responses {
        assert_eq!(r.close_reason, CloseReason::DeadlinePressure);
        assert_eq!(r.batch_size, 4);
        assert!(r.output.is_ok());
    }
    assert!(
        responses.iter().all(|r| r.batch_size * 8 < 512),
        "the batch closed well short of the K budget"
    );
    let close = fe
        .timeline()
        .iter()
        .find(|e| e.phase == FrontendPhase::Close)
        .expect("the close is on the timeline");
    assert!(
        close.detail.starts_with("deadline_pressure"),
        "close detail names the reason: {}",
        close.detail
    );
    assert_eq!(fe.metrics().counter("frontend.close.deadline_pressure"), 1);
}

#[test]
fn deadline_less_groups_wait_for_the_flush() {
    let (service, a) = service_with(512, 1);
    let mut fe = Frontend::new(
        service,
        FrontendConfig { max_group_age_polls: None, ..FrontendConfig::default() },
    );
    let t = fe.register_tenant("alpha", TenantQuota::default()).unwrap();
    for seed in 0..3 {
        fe.submit(t, FrontendRequest::new(a, dense(8, seed))).unwrap();
    }

    for _ in 0..5 {
        assert!(fe.poll().is_empty(), "best-effort groups never close early");
    }
    assert_eq!(fe.pending(), 3);

    let responses = fe.drain();
    assert_eq!(responses.len(), 3);
    assert!(responses.iter().all(|r| r.close_reason == CloseReason::Flush));
    assert!(
        fe.timeline()
            .iter()
            .all(|e| e.phase != FrontendPhase::Close || e.detail.starts_with("flush")),
        "the only close is the flush"
    );
}

#[test]
fn aged_groups_close_after_the_configured_polls() {
    let (service, a) = service_with(512, 1);
    let mut fe = Frontend::new(
        service,
        FrontendConfig { max_group_age_polls: Some(3), ..FrontendConfig::default() },
    );
    let t = fe.register_tenant("alpha", TenantQuota::default()).unwrap();
    fe.submit(t, FrontendRequest::new(a, dense(8, 0))).unwrap();

    assert!(fe.poll().is_empty());
    assert!(fe.poll().is_empty());
    let responses = fe.poll();
    assert_eq!(responses.len(), 1, "the lone request ages out on the third poll");
    assert_eq!(responses[0].close_reason, CloseReason::Aged);
    assert_eq!(responses[0].batch_size, 1);
    assert_eq!(fe.metrics().counter("frontend.close.aged"), 1);
}

#[test]
fn k_budget_full_emits_only_full_chunks() {
    let (service, a) = service_with(32, 1); // per_batch = 4 at k = 8
    let mut fe = Frontend::new(service, FrontendConfig::default());
    let t = fe.register_tenant("alpha", TenantQuota::unlimited()).unwrap();
    let jobs: Vec<u64> =
        (0..6).map(|s| fe.submit(t, FrontendRequest::new(a, dense(8, s))).unwrap().id()).collect();

    let responses = fe.poll();
    assert_eq!(responses.len(), 4, "only the full chunk executes");
    assert!(responses
        .iter()
        .all(|r| r.close_reason == CloseReason::KBudgetFull && r.batch_size == 4));
    let served: Vec<u64> = responses.iter().map(|r| r.job.id()).collect();
    assert_eq!(served, jobs[..4], "a single tenant's DRR order is FIFO");
    assert_eq!(fe.pending(), 2, "the partial tail re-queues");

    let tail = fe.drain();
    assert_eq!(tail.len(), 2);
    assert!(tail.iter().all(|r| r.close_reason == CloseReason::Flush));
    let tail_jobs: Vec<u64> = tail.iter().map(|r| r.job.id()).collect();
    assert_eq!(tail_jobs, jobs[4..]);
}

#[test]
fn drr_gives_a_lone_tenant_a_slot_in_the_first_batch() {
    let (service, a) = service_with(32, 1); // per_batch = 4 at k = 8
    let mut fe =
        Frontend::new(service, FrontendConfig { quantum_k: 8, ..FrontendConfig::default() });
    let flooder = fe.register_tenant("flooder", TenantQuota::unlimited()).unwrap();
    let quiet = fe.register_tenant("quiet", TenantQuota::default()).unwrap();

    for seed in 0..7 {
        fe.submit(flooder, FrontendRequest::new(a, dense(8, seed))).unwrap();
    }
    // The quiet tenant arrives last, behind seven queued requests.
    let quiet_job = fe.submit(quiet, FrontendRequest::new(a, dense(8, 70))).unwrap();

    let responses = fe.poll();
    assert_eq!(responses.len(), 8, "two full chunks leave together");
    let first_close = fe
        .timeline()
        .iter()
        .find(|e| e.phase == FrontendPhase::Close)
        .expect("closes are on the timeline");
    assert!(
        first_close.jobs.contains(&quiet_job.id()),
        "deficit round robin seats the quiet tenant in the FIRST chunk \
         despite arriving last (chunk jobs: {:?})",
        first_close.jobs
    );
    let quiet_response = responses.iter().find(|r| r.job == quiet_job).unwrap();
    assert_eq!(quiet_response.tenant, "quiet");
    assert_eq!(quiet_response.batch_size, 4);
}

// ---------------------------------------------------------------------------
// Threaded mode: producers on caller threads, graceful shutdown.
// ---------------------------------------------------------------------------

#[test]
fn threaded_frontend_resolves_every_ticket_bit_identically() {
    const PER_TENANT: u64 = 8;

    // Solo reference outputs, one request at a time on a plain service.
    let mut solo = SpmmService::new(config());
    let sh = solo.register_matrix(matrix(5), STRIPE).unwrap();
    let mut expected = std::collections::HashMap::new();
    for seed in 0..(2 * PER_TENANT) {
        let out = solo.run_one(SpmmRequest::new(sh, dense(8, 100 + seed))).unwrap().output.unwrap();
        expected.insert(100 + seed, out);
    }

    let mut service = SpmmService::new(config());
    let a = service.register_matrix(matrix(5), STRIPE).unwrap();
    let fe = AsyncFrontend::spawn(service, FrontendConfig::default());
    let train = fe.register_tenant("train", TenantQuota::default()).unwrap();
    let infer = fe.register_tenant("infer", TenantQuota::default()).unwrap();

    let producers: Vec<_> = [(train, 100u64), (infer, 100 + PER_TENANT)]
        .into_iter()
        .map(|(handle, base)| {
            std::thread::spawn(move || {
                (0..PER_TENANT)
                    .map(|i| {
                        let seed = base + i;
                        let request = FrontendRequest::new(a, dense(8, seed)).with_slo(10.0);
                        (seed, handle.submit(request).expect("admitted"))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let tickets: Vec<_> =
        producers.into_iter().flat_map(|p| p.join().expect("producer thread")).collect();

    // Shut down with tickets outstanding: the drain completes every queued
    // batch and resolves every ticket before the scheduler exits.
    let drained = fe.shutdown();
    for (seed, ticket) in tickets {
        let response = ticket.wait().expect("graceful shutdown answers every ticket");
        assert_eq!(
            response.output.unwrap().as_slice(),
            expected[&seed].as_slice(),
            "threaded response must match the solo run bitwise (seed {seed})"
        );
    }

    let train_digest = drained.tenant_digest("train").unwrap();
    let infer_digest = drained.tenant_digest("infer").unwrap();
    assert_eq!(train_digest.completed, PER_TENANT);
    assert_eq!(infer_digest.completed, PER_TENANT);
    assert_eq!(drained.metrics().counter("frontend.completed"), 2 * PER_TENANT);
    assert_eq!(drained.pending(), 0);
}

#[test]
fn handles_outlive_shutdown_as_disconnected() {
    let mut service = SpmmService::new(config());
    let a = service.register_matrix(matrix(5), STRIPE).unwrap();
    let fe = AsyncFrontend::spawn(service, FrontendConfig::default());
    let handle = fe.register_tenant("alpha", TenantQuota::default()).unwrap();
    let spare = handle.clone();

    handle.run(FrontendRequest::new(a, dense(8, 0))).unwrap().output.unwrap();
    let _drained = fe.shutdown();

    match spare.submit(FrontendRequest::new(a, dense(8, 1))) {
        Err(FrontendError::Disconnected) => {}
        Err(other) => panic!("expected Disconnected, got {other:?}"),
        Ok(_) => panic!("a handle must not submit past shutdown"),
    }
}

// ---------------------------------------------------------------------------
// The acceptance scenario: >= 4 tenants, mixed deadlines, chaos faults,
// quota backpressure — bit-identical to solo, deterministic across worker
// counts.
// ---------------------------------------------------------------------------

/// Everything observable about one scenario run, for cross-worker-count
/// equality.
struct ScenarioOutcome {
    /// `(job, tenant, close reason, batch size, output bits)` per response,
    /// in completion order.
    responses: Vec<(u64, String, &'static str, usize, Vec<u64>)>,
    rejections: Vec<String>,
    timeline: String,
    counters: Vec<(String, u64)>,
    /// Batches the timeline shows closing early under deadline pressure.
    deadline_closes: usize,
}

fn chaos_scenario(workers: usize) -> ScenarioOutcome {
    let mut cfg = config();
    cfg.max_k_per_batch = 64; // per_batch = 8 at k = 8
    cfg.fault_plan = Some(FaultPlan::light(99));
    cfg.workers = Some(workers);
    let mut service = SpmmService::new(cfg);
    let m1 = service.register_matrix(matrix(21), STRIPE).unwrap();
    let m2 = service.register_matrix(matrix(22), STRIPE).unwrap();

    let mut fe = Frontend::new(
        service,
        FrontendConfig {
            max_queue_depth: 16,
            quantum_k: 8,
            deadline_safety: 1.5,
            max_group_age_polls: Some(4),
            // Never pressure-reject here; the rung has its own test.
            cache_pressure: 2.0,
        },
    );
    let alpha = fe.register_tenant("alpha", TenantQuota::default()).unwrap(); // tight SLOs
    let bravo = fe.register_tenant("bravo", TenantQuota::default()).unwrap(); // loose SLOs
    let charlie = fe.register_tenant("charlie", TenantQuota::default()).unwrap(); // best effort
    let delta =
        fe // flooder with a tiny queue quota
            .register_tenant("delta", TenantQuota { max_queued: 2, max_in_flight_k: 4096 })
            .unwrap();

    let mut responses: Vec<FrontendResponse> = Vec::new();
    let mut rejections: Vec<String> = Vec::new();

    // Wave 1: a slow-building best-effort/loose group — nothing closes.
    fe.submit(charlie, FrontendRequest::new(m1, dense(8, 10))).unwrap();
    fe.submit(charlie, FrontendRequest::new(m1, dense(8, 11))).unwrap();
    fe.submit(bravo, FrontendRequest::new(m1, dense(8, 12)).with_slo(50.0)).unwrap();
    responses.extend(fe.poll());

    // Wave 2: the flooder overruns its queue quota — typed backpressure.
    for seed in [20, 21, 22, 23] {
        match fe.submit(delta, FrontendRequest::new(m2, dense(8, seed))) {
            Ok(_) => {}
            Err(e @ FrontendError::Rejected { .. }) => rejections.push(e.to_string()),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    // Wave 3: urgent arrivals put both groups under deadline pressure.
    fe.submit(alpha, FrontendRequest::new(m1, dense(8, 30)).with_slo(0.0)).unwrap();
    responses.extend(fe.poll());
    fe.submit(alpha, FrontendRequest::new(m2, dense(8, 31)).with_slo(0.0)).unwrap();
    responses.extend(fe.poll());

    // Wave 4: a lone best-effort pair ages out.
    fe.submit(charlie, FrontendRequest::new(m1, dense(16, 40))).unwrap();
    fe.submit(charlie, FrontendRequest::new(m1, dense(16, 41))).unwrap();
    for _ in 0..5 {
        responses.extend(fe.poll());
    }

    // Wave 5: the loose tenant fills a whole chunk — K-budget close.
    for seed in 50..58 {
        fe.submit(bravo, FrontendRequest::new(m1, dense(8, seed)).with_slo(50.0)).unwrap();
    }
    responses.extend(fe.poll());

    // Wave 6: one straggler rides the shutdown flush. After `begin_drain`,
    // fresh submissions bounce with the Draining reason.
    fe.submit(charlie, FrontendRequest::new(m2, dense(16, 60))).unwrap();
    fe.begin_drain();
    match fe.submit(charlie, FrontendRequest::new(m2, dense(16, 61))) {
        Err(e @ FrontendError::Rejected { reason: RejectReason::Draining, .. }) => {
            rejections.push(e.to_string());
        }
        other => panic!("expected a Draining rejection, got {other:?}"),
    }
    responses.extend(fe.drain());
    assert_eq!(fe.pending(), 0);

    let mut counters: Vec<(String, u64)> =
        fe.metrics().counters().map(|(k, v)| (k.to_string(), v)).collect();
    counters.sort();
    let deadline_closes = fe
        .timeline()
        .iter()
        .filter(|e| e.phase == FrontendPhase::Close && e.detail.starts_with("deadline_pressure"))
        .count();
    ScenarioOutcome {
        responses: responses
            .iter()
            .map(|r| {
                (
                    r.job.id(),
                    r.tenant.clone(),
                    r.close_reason.label(),
                    r.batch_size,
                    r.output
                        .as_ref()
                        .expect("chaos recovers every admitted request")
                        .as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect(),
                )
            })
            .collect(),
        rejections,
        timeline: fe.timeline_jsonl(),
        counters,
        deadline_closes,
    }
}

#[test]
fn chaos_multi_tenant_scenario_meets_the_acceptance_contract() {
    let outcome = chaos_scenario(1);

    // Solo reference: the same requests, one at a time, on a service with
    // the same configuration (same fault plan) — the frontend's responses
    // must be bitwise equal for every admitted request.
    let mut cfg = config();
    cfg.max_k_per_batch = 64;
    cfg.fault_plan = Some(FaultPlan::light(99));
    cfg.workers = Some(1);
    let mut solo = SpmmService::new(cfg);
    let m1 = solo.register_matrix(matrix(21), STRIPE).unwrap();
    let m2 = solo.register_matrix(matrix(22), STRIPE).unwrap();
    let request_of = |seed: u64| -> (MatrixHandle, usize) {
        match seed {
            10 | 11 | 12 | 30 => (m1, 8),
            20 | 21 | 31 => (m2, 8), // delta's admitted pair + alpha's m2 probe
            40 | 41 => (m1, 16),
            50..=57 => (m1, 8),
            60 => (m2, 16),
            _ => unreachable!("unknown scenario seed {seed}"),
        }
    };
    // Job ids are dense in admission order; rebuild the admission sequence
    // of seeds (rejected submissions get no job id).
    let admitted: Vec<u64> =
        vec![10, 11, 12, 20, 21, 30, 31, 40, 41, 50, 51, 52, 53, 54, 55, 56, 57, 60];
    assert_eq!(outcome.responses.len(), admitted.len(), "every admitted request answered");
    for (job, seed) in admitted.iter().enumerate() {
        let (handle, k) = request_of(*seed);
        let reference =
            solo.run_one(SpmmRequest::new(handle, dense(k, *seed))).unwrap().output.unwrap();
        let (_, tenant, _, _, bits) = outcome
            .responses
            .iter()
            .find(|(j, ..)| *j == job as u64)
            .expect("response for every job");
        let reference_bits: Vec<u64> = reference.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits, &reference_bits,
            "job {job} (tenant {tenant}, seed {seed}) must match its solo run bitwise"
        );
    }

    // At least one batch demonstrably closed early under deadline pressure,
    // asserted from the timeline (and the whole timeline stays valid JSONL).
    assert!(
        outcome.deadline_closes >= 2,
        "both urgent waves closed early (saw {})",
        outcome.deadline_closes
    );
    for line in outcome.timeline.lines() {
        let v: serde::Value = serde_json::from_str(line).expect("timeline line parses");
        assert!(v.get("seq").is_some() && v.get("detail").is_some());
    }

    // Typed backpressure fired: the flooder's quota and the drain.
    assert!(
        outcome.rejections.iter().any(|r| r.contains("delta") && r.contains("queued")),
        "the flooder was turned away by its queue quota: {:?}",
        outcome.rejections
    );
    assert!(outcome.rejections.iter().any(|r| r.contains("draining")));

    // Every close reason appeared.
    let reasons: std::collections::HashSet<&str> =
        outcome.responses.iter().map(|(_, _, reason, _, _)| *reason).collect();
    for reason in ["deadline_pressure", "aged", "k_budget_full", "flush"] {
        assert!(reasons.contains(reason), "missing close reason {reason}: {reasons:?}");
    }
}

#[test]
fn chaos_scenario_is_deterministic_across_worker_counts() {
    let one = chaos_scenario(1);
    let four = chaos_scenario(4);

    assert_eq!(one.timeline, four.timeline, "identical timelines at 1 and 4 workers");
    assert_eq!(one.rejections, four.rejections);
    assert_eq!(one.counters, four.counters);
    assert_eq!(one.responses.len(), four.responses.len());
    for (a, b) in one.responses.iter().zip(&four.responses) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3);
        assert_eq!(a.4, b.4, "job {} output must be worker-count independent", a.0);
    }
}

#[test]
fn per_tenant_observability_is_consistent() {
    let (service, a) = service_with(64, 1);
    let mut fe = Frontend::new(service, FrontendConfig::default());
    let alpha = fe.register_tenant("alpha", TenantQuota::default()).unwrap();
    let bravo = fe.register_tenant("bravo", TenantQuota::default()).unwrap();

    fe.submit(alpha, FrontendRequest::new(a, dense(8, 0)).with_slo(100.0)).unwrap();
    fe.submit(alpha, FrontendRequest::new(a, dense(8, 1))).unwrap();
    fe.submit(bravo, FrontendRequest::new(a, dense(8, 2))).unwrap();
    let responses = fe.drain();
    assert_eq!(responses.len(), 3);

    let alpha_digest = fe.tenant_digest("alpha").unwrap();
    assert_eq!(alpha_digest.submitted, 2);
    assert_eq!(alpha_digest.completed, 2);
    assert_eq!(
        alpha_digest.deadline_hits + alpha_digest.deadline_misses,
        alpha_digest.completed,
        "hits plus misses covers every completion (best effort counts as a hit)"
    );
    assert!(alpha_digest.latency_ns_p95 >= alpha_digest.latency_ns_p50);
    assert_eq!(fe.tenant_digest("bravo").unwrap().completed, 1);
    assert!(fe.tenant_digest("ghost").is_none());

    // Labeled metrics agree with the digests and sum to the global series.
    let m = fe.metrics();
    assert_eq!(m.counter_labeled("frontend.completed", ("tenant", "alpha")), 2);
    assert_eq!(m.counter_labeled("frontend.completed", ("tenant", "bravo")), 1);
    assert_eq!(m.counter("frontend.completed"), 3);

    // The per-tenant timeline slice carries only the tenant's own events
    // plus shared events covering its jobs, and stays valid JSONL.
    let slice = fe.tenant_timeline_jsonl("bravo").unwrap();
    assert!(!slice.is_empty());
    for line in slice.lines() {
        let v: serde::Value = serde_json::from_str(line).unwrap();
        let tenant = v.get("tenant").and_then(|t| t.as_str()).unwrap();
        assert!(tenant == "bravo" || tenant.is_empty(), "foreign event in the slice: {line}");
    }
    let merged = fe.timeline_jsonl();
    assert!(merged.lines().count() > slice.lines().count());
    assert!(fe.tenant_timeline_jsonl("ghost").is_none());
}
