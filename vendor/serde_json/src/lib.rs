//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` crate's [`Value`] tree to JSON text and
//! parses JSON text back into it. Numbers serialize through Rust's `{:?}`
//! formatting, which emits the shortest string that round-trips the exact
//! `f64` — so serialize→parse is lossless for every finite float, which the
//! workspace's cost-model round-trip test depends on.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the `Value` shapes this workspace produces; the `Result`
/// mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, DeError> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indentation).
///
/// # Errors
///
/// Never fails for the `Value` shapes this workspace produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, DeError> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns [`DeError`] on malformed JSON or when the tree does not match `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, DeError> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_f64(out, *n),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{:?}` is the shortest representation that parses back to the same
        // bits, and it is always valid JSON for finite values (e.g. `1e-10`,
        // `0.5`, `3.0`).
        out.push_str(&format!("{n:?}"));
    } else {
        // JSON has no Inf/NaN; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> DeError {
        DeError::custom(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), DeError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject instead of mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Number).map_err(|_| self.error("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for &v in &[0.0, 0.5, 1.0 / 3.0, 1.95e-10, 6.6e-12, f64::MIN_POSITIVE, 1e300] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {json}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(json, u64::MAX.to_string());
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn strings_escape_and_parse() {
        let original = "line1\n\"quoted\"\tπ".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = Value::Object(vec![
            ("xs".to_string(), Value::Array(vec![Value::UInt(1), Value::Number(2.5)])),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let compact = to_string(&value).unwrap();
        let back: Value = from_str(&compact).unwrap();
        // Parsed numbers keep integer-ness where possible; compare as JSON.
        assert_eq!(to_string(&back).unwrap(), compact);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"xs\": ["));
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(to_string(&back2).unwrap(), compact);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<f64>("\"x\"").is_err());
    }
}
