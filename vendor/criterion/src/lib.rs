//! Offline stand-in for `criterion`.
//!
//! A small wall-clock micro-benchmark harness exposing the subset of the
//! criterion API this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` and `throughput`,
//! `bench_function` / `bench_with_input`, and `Bencher::iter` /
//! `Bencher::iter_batched`.
//!
//! Each benchmark is calibrated (the routine is timed once or repeatedly
//! until a minimum window is filled), then measured over `sample_size`
//! samples; the harness reports min / mean / median / max per iteration and,
//! when the `CRITERION_MINI_JSON` environment variable names a path, writes
//! all results of the run there as JSON for downstream tooling.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units processed per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` inputs are sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One fresh input per routine call (the only strategy implemented).
    LargeInput,
    /// Treated identically to [`BatchSize::LargeInput`].
    SmallInput,
    /// Treated identically to [`BatchSize::LargeInput`].
    PerIteration,
}

/// A benchmark's identifier within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct BenchRecord {
    group: String,
    id: String,
    min_ns: f64,
    mean_ns: f64,
    median_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

/// The harness entry point; collects results across all groups in a run.
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<BenchRecord>,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness, reading an optional substring filter from the
    /// command line (the first argument not starting with `-`).
    pub fn from_args() -> Criterion {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { records: Vec::new(), filter }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Prints the run's summary and, when `CRITERION_MINI_JSON` is set,
    /// writes the results there as JSON. Called by `criterion_main!`.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_MINI_JSON") {
            if !path.is_empty() {
                if let Err(e) = std::fs::write(&path, self.to_json()) {
                    eprintln!("criterion-mini: cannot write {path}: {e}");
                }
            }
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let (tp_key, tp_val) = match r.throughput {
                Some(Throughput::Elements(n)) => ("elements_per_iter", n as i128),
                Some(Throughput::Bytes(n)) => ("bytes_per_iter", n as i128),
                None => ("elements_per_iter", -1),
            };
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"id\": \"{}\", \"min_ns\": {:?}, \
                 \"mean_ns\": {:?}, \"median_ns\": {:?}, \"max_ns\": {:?}, \
                 \"samples\": {}, \"iters_per_sample\": {}, \"{}\": {}}}{}\n",
                r.group,
                r.id,
                r.min_ns,
                r.mean_ns,
                r.median_ns,
                r.max_ns,
                r.samples,
                r.iters_per_sample,
                tp_key,
                tp_val,
                if i + 1 < self.records.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the units processed per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        if self.skipped(&id) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.record(id, bencher);
        self
    }

    /// Benchmarks a closure that receives `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if self.skipped(&id.id) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.record(id.id, bencher);
        self
    }

    /// Ends the group (provided for API compatibility; prints nothing extra).
    pub fn finish(self) {}

    fn skipped(&self, id: &str) -> bool {
        match &self.criterion.filter {
            Some(f) => !format!("{}/{}", self.name, id).contains(f.as_str()),
            None => false,
        }
    }

    fn record(&mut self, id: String, bencher: Bencher) {
        let mut ns = bencher.samples_ns;
        assert!(!ns.is_empty(), "benchmark `{}/{id}` measured nothing", self.name);
        ns.sort_by(|a, b| a.total_cmp(b));
        let min = ns[0];
        let max = ns[ns.len() - 1];
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let median = if ns.len() % 2 == 1 {
            ns[ns.len() / 2]
        } else {
            (ns[ns.len() / 2 - 1] + ns[ns.len() / 2]) / 2.0
        };
        let record = BenchRecord {
            group: self.name.clone(),
            id,
            min_ns: min,
            mean_ns: mean,
            median_ns: median,
            max_ns: max,
            samples: ns.len(),
            iters_per_sample: bencher.iters_per_sample,
            throughput: self.throughput,
        };
        let rate = match record.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({} Melem/s)", pretty((n as f64) / (record.median_ns / 1e9) / 1e6))
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({} MiB/s)",
                    pretty((n as f64) / (record.median_ns / 1e9) / (1 << 20) as f64)
                )
            }
            None => String::new(),
        };
        println!(
            "{:<48} time: [{} {} {}]{}",
            format!("{}/{}", record.group, record.id),
            fmt_ns(record.min_ns),
            fmt_ns(record.median_ns),
            fmt_ns(record.max_ns),
            rate,
        );
        self.criterion.records.push(record);
    }
}

/// Runs and times a single benchmark's routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

/// Per-benchmark measurement budget (across all samples).
const TARGET_TOTAL: Duration = Duration::from_millis(1200);
/// Minimum window the calibration pass must fill before trusting its rate.
const CALIBRATION_WINDOW: Duration = Duration::from_millis(20);

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher { sample_size, samples_ns: Vec::new(), iters_per_sample: 0 }
    }

    /// Times `routine` repeatedly; the measured span contains only the
    /// routine calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: double the batch until the timing window is filled.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= CALIBRATION_WINDOW || iters >= 1 << 22 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 2;
        };
        let per_sample = TARGET_TOTAL.as_secs_f64() / self.sample_size as f64;
        let n = ((per_sample / per_iter.max(1e-9)).ceil() as u64).max(1);
        self.iters_per_sample = n;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            self.samples_ns.push(start.elapsed().as_secs_f64() * 1e9 / n as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine calls
    /// are inside the measured spans.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Calibrate with a single timed call.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let per_iter = start.elapsed().as_secs_f64().max(1e-9);
        let per_sample = TARGET_TOTAL.as_secs_f64() / self.sample_size as f64;
        // Cap the batch: setup runs untimed but still costs wall-clock.
        let n = ((per_sample / per_iter).ceil() as u64).clamp(1, 4096);
        self.iters_per_sample = n;
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            self.samples_ns.push(total.as_secs_f64() * 1e9 / n as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{} s", pretty(ns / 1e9))
    } else if ns >= 1e6 {
        format!("{} ms", pretty(ns / 1e6))
    } else if ns >= 1e3 {
        format!("{} µs", pretty(ns / 1e3))
    } else {
        format!("{} ns", pretty(ns))
    }
}

fn pretty(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else if v >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generates `main` running the listed groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut b = Bencher::new(5);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn bencher_iter_batched_collects_samples() {
        let mut b = Bencher::new(4);
        b.iter_batched(|| vec![1.0f64; 64], |v| v.iter().sum::<f64>(), BatchSize::LargeInput);
        assert_eq!(b.samples_ns.len(), 4);
    }

    #[test]
    fn group_records_results_and_json_renders() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            g.bench_function("f", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("h", 4), &4, |b, &n| b.iter(|| n * 2));
            g.finish();
        }
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].id, "f");
        assert_eq!(c.records[1].id, "h/4");
        let json = c.to_json();
        assert!(json.contains("\"group\": \"g\""));
        assert!(json.contains("\"elements_per_iter\": 10"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
