//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of serde's contract the workspace uses: derived
//! [`Serialize`]/[`Deserialize`] on plain named-field structs and unit-variant
//! enums, round-tripped through JSON by the sibling `serde_json` stand-in.
//!
//! Instead of serde's visitor architecture, serialization goes through an
//! explicit tree: [`Value`]. A type serializes *to* a `Value` and
//! deserializes *from* one; `serde_json` renders and parses the tree. That
//! is all the workspace needs, and it keeps both crates dependency-free.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped data tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// A floating-point number.
    Number(f64),
    /// A signed integer (kept exact, unlike `Number`).
    Int(i64),
    /// An unsigned integer (kept exact, unlike `Number`).
    UInt(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Number(v) => Some(v),
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::Number(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The numeric value as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::Number(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A deserialization error: what was expected, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> DeError {
        DeError { message: message.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// This value as a data tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds the value from a data tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Fetches and deserializes a struct field from object entries — used by the
/// derive macro.
///
/// # Errors
///
/// Returns [`DeError`] if the key is missing or its value malformed.
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    let value = entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}` for {ty}")))?;
    T::from_value(value).map_err(|e| DeError::custom(format!("field `{name}` of {ty}: {e}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let v = value
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(concat!("out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let v = value
                    .as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(concat!("out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.as_f64().ok_or_else(|| DeError::custom("expected number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_str().map(str::to_string).ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_array().ok_or_else(|| DeError::custom("expected array"))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of {N} elements, got {}",
                items.len()
            )));
        }
        let mut out: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        // Drain into a fixed array without requiring T: Default/Copy.
        let mut iter = out.drain(..);
        Ok(std::array::from_fn(|_| iter.next().expect("length checked")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::custom("expected 3-element array")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::from_value(&3.5f64.to_value()), Ok(3.5));
        assert_eq!(usize::from_value(&7usize.to_value()), Ok(7));
        assert_eq!(i32::from_value(&(-4i32).to_value()), Ok(-4));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<f64>::None.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<f64>::from_value(&Value::Number(1.0)), Ok(Some(1.0)));
    }

    #[test]
    fn arrays_round_trip() {
        let a = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&a.to_value()), Ok(a));
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()), Ok(v));
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(f64::from_value(&Value::String("x".into())).is_err());
        assert!(<[f64; 2]>::from_value(&vec![1.0f64].to_value()).is_err());
        assert!(usize::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn field_lookup_reports_missing_keys() {
        let obj = vec![("a".to_string(), Value::Number(1.0))];
        assert_eq!(field::<f64>(&obj, "a", "T"), Ok(1.0));
        let err = field::<f64>(&obj, "b", "T").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
