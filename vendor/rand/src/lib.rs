//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API surface the workspace actually uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — a deterministic,
//!   platform-independent generator (xoshiro256++ seeded via SplitMix64);
//! * [`Rng::gen`] for `f64` (uniform in `[0, 1)`) and other primitives;
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges, via
//!   Lemire's unbiased bounded-sampling method.
//!
//! The streams differ from upstream `rand`'s `StdRng` (which is ChaCha12),
//! but every consumer in this workspace only relies on determinism and
//! reasonable uniformity, not on a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can seed a generator deterministically.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Identical seeds yield
    /// identical streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform sample drawn from an `Rng` — the `Standard`-distribution analog.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range of values `gen_range` can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return <u64 as StandardSample>::sample(rng) as $t;
                }
                let span = (end - start) as u64 + 1;
                start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= low.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// The raw 64-bit source every distribution builds on.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred primitive type (`f64` is uniform in
    /// `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed with SplitMix64, as xoshiro's authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_half_open_stays_in_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn gen_range_inclusive_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            match rng.gen_range(3usize..=5) {
                3 => hit_lo = true,
                5 => hit_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
