//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields (any visibility, `#[doc]`/other attributes
//!   ignored, no generics);
//! * enums whose variants are all unit variants (serialized as their name).
//!
//! Anything else — tuple structs, generic types, data-carrying enum
//! variants — panics at compile time with a clear message, which is the
//! correct behaviour for a deliberately minimal stand-in.
//!
//! The implementation parses the item's `TokenStream` by hand (the real
//! `syn`/`quote` crates are unavailable offline) and emits the impl as
//! formatted source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we need to know about the derived item.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\",")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let entries = value.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match value.as_str() {{\n\
                             {arms}\n\
                             other => Err(::serde::DeError::custom(format!(\
                                 \"unknown {name} variant: {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Deserialize impl parses")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive({name}): generic types are not supported by the vendored serde");
    }
    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("derive({name}): tuple structs are not supported by the vendored serde")
        }
        other => panic!("derive({name}): expected a braced body, found {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(body) },
        "enum" => Item::Enum { name: name.clone(), variants: parse_unit_variants(body, &name) },
        other => panic!("derive: unsupported item kind `{other}`"),
    }
}

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' plus the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Collects the field names of `name: Type, ...`, skipping types (which may
/// contain nested `,` only inside groups, so a top-level `,` ends a field).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive: expected `:` after field, found {other:?}"),
        }
        // Skip the type: consume until a top-level comma. Generic arguments
        // use `<`/`>` punct pairs, so track angle depth as well.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Collects unit variant names; panics on data-carrying variants.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let variant = id.to_string();
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(variant);
                i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                i += 1;
                while let Some(t) = tokens.get(i) {
                    if matches!(t, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
                variants.push(variant);
                i += 1;
            }
            Some(TokenTree::Group(_)) => panic!(
                "derive({enum_name}): variant `{variant}` carries data, which the \
                 vendored serde does not support"
            ),
            other => panic!("derive({enum_name}): unexpected token {other:?}"),
        }
    }
    variants
}
