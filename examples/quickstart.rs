//! Quickstart: run Two-Face and a dense-shifting baseline on one matrix and
//! compare the results.
//!
//! ```text
//! cargo run --release -p twoface-core --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;
use twoface_core::{reference_spmm, run_algorithm, Algorithm, Problem, RunOptions};
use twoface_matrix::gen::{webcrawl, WebcrawlConfig};
use twoface_net::CostModel;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A sparse matrix. Generators are deterministic: same config + seed
    //    always yields the same matrix. This one mimics a web crawl: strong
    //    host locality plus a sprinkle of cross-host links.
    let a = Arc::new(webcrawl(
        &WebcrawlConfig { n: 8192, hosts: 128, per_row: 12, ..Default::default() },
        42,
    ));
    println!("matrix: {} x {}, {} nonzeros", a.rows(), a.cols(), a.nnz());

    // 2. A problem: distribute A (and a generated dense B with K = 32
    //    columns) over 8 simulated nodes with stripe width 64.
    let problem = Problem::with_generated_b(Arc::clone(&a), 32, 8, 64)?;

    // 3. The simulated machine: Table-3-like coefficients, rescaled for
    //    laptop-sized matrices.
    let cost = CostModel::delta_scaled();

    // 4. Run Two-Face and the strongest baseline, validating both outputs
    //    against a serial reference.
    let options = RunOptions { validate: true, ..Default::default() };
    let two_face = run_algorithm(Algorithm::TwoFace, &problem, &cost, &options)?;
    let ds2 =
        run_algorithm(Algorithm::DenseShifting { replication: 2 }, &problem, &cost, &options)?;

    println!(
        "\n{:<22} {:>14} {:>16} {:>12}",
        "algorithm", "sim time (s)", "elements moved", "messages"
    );
    for r in [&ds2, &two_face] {
        println!(
            "{:<22} {:>14.6} {:>16} {:>12}",
            r.algorithm, r.seconds, r.elements_received, r.messages
        );
    }
    println!(
        "\nTwo-Face speedup over DS2: {:.2}x (moved {:.1}% of DS2's data)",
        ds2.seconds / two_face.seconds,
        100.0 * two_face.elements_received as f64 / ds2.elements_received as f64
    );

    // 5. Outputs are numerically correct: both equal the serial reference.
    let reference = reference_spmm(&a, &problem.b);
    let c = two_face.output.as_ref().expect("validated runs carry output");
    assert!(c.approx_eq(&reference, 1e-9));
    println!("output verified against the serial reference ✓");

    // 6. Where did Two-Face spend its time? The two lanes overlap.
    let b = &two_face.critical_breakdown;
    println!(
        "\ncritical rank breakdown: sync comm {:.2}ms + sync comp {:.2}ms || \
         async comm {:.2}ms + async comp {:.2}ms",
        b.sync_comm * 1e3,
        b.sync_comp * 1e3,
        b.async_comm * 1e3,
        b.async_comp * 1e3,
    );
    Ok(())
}
