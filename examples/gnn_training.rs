//! Full-graph GNN training over distributed SpMM (§5.4 of the paper).
//!
//! Trains a two-layer GCN on a power-law social graph, comparing the
//! per-epoch aggregation time of Two-Face against dense shifting, and shows
//! how the one-time preprocessing cost amortizes over epochs.
//!
//! ```text
//! cargo run --release -p twoface-core --example gnn_training
//! ```

use std::error::Error;
use std::sync::Arc;
use std::time::Instant;
use twoface_core::gnn::{normalize_adjacency, train_gcn};
use twoface_core::{prepare_plan, Algorithm, Problem, RunOptions};
use twoface_matrix::gen::{rmat, RmatConfig};
use twoface_matrix::DenseMatrix;
use twoface_net::CostModel;
use twoface_partition::ModelCoefficients;

const P: usize = 8;
const STRIPE_WIDTH: usize = 64;
const FEATURES: usize = 16;
const HIDDEN: usize = 32;
const EPOCHS: usize = 5;

fn main() -> Result<(), Box<dyn Error>> {
    // A social graph: symmetrized power-law R-MAT, row-normalized with self
    // loops (the standard GCN Â).
    let raw = rmat(&RmatConfig { scale: 12, edge_factor: 10, ..Default::default() }, 7);
    let adjacency = Arc::new(normalize_adjacency(&raw.symmetrize()?));
    println!(
        "graph: {} vertices, {} edges (after symmetrization + self loops)",
        adjacency.rows(),
        adjacency.nnz()
    );
    let features = DenseMatrix::from_fn(adjacency.rows(), FEATURES, |i, j| {
        ((i * 31 + j * 7) % 97) as f64 / 97.0
    });
    let cost = CostModel::delta_scaled();

    // Preprocess once; reuse the plan for every SpMM of every epoch — the
    // amortization argument of §5.4.
    let probe = Problem::with_generated_b(Arc::clone(&adjacency), FEATURES, P, STRIPE_WIDTH)?;
    let wall = Instant::now();
    let plan = Arc::new(prepare_plan(&probe, &ModelCoefficients::from(&cost), &cost));
    let prep_wall = wall.elapsed();
    let (local, sync, async_) = plan.class_totals();
    println!(
        "preprocessing: {:.1}ms wall; stripe classes: {local} local-input, {sync} sync, {async_} async",
        prep_wall.as_secs_f64() * 1e3
    );

    for algorithm in [Algorithm::TwoFace, Algorithm::DenseShifting { replication: 2 }] {
        let options = RunOptions {
            plan: algorithm.uses_plan().then(|| Arc::clone(&plan)),
            ..Default::default()
        };
        let summary = train_gcn(
            &adjacency,
            &features,
            HIDDEN,
            EPOCHS,
            algorithm,
            P,
            STRIPE_WIDTH,
            &cost,
            &options,
        )?;
        let per_epoch = summary.epoch_seconds[0];
        let total: f64 = summary.epoch_seconds.iter().sum();
        println!(
            "\n{algorithm}: {EPOCHS} epochs x 2 SpMM layers on {P} nodes\n  \
             per-epoch aggregation: {:.3}ms   total: {:.3}ms   embedding norm: {:.4}",
            per_epoch * 1e3,
            total * 1e3,
            summary.final_norm
        );
    }

    println!(
        "\nEvery epoch reuses the same preprocessed plan; in GNN training with\n\
         hundreds of epochs the one-time preprocessing disappears into noise —\n\
         exactly the amortization the paper quantifies in Table 6."
    );
    Ok(())
}
