//! Full-graph GNN training sharing one cluster with online inference
//! through the multi-tenant front-end (§5.4 made multi-tenant).
//!
//! Two tenants drive the same warm [`SpmmService`] concurrently from their
//! own threads via [`AsyncFrontend`]:
//!
//! * `training` — a two-layer GCN forward pass per epoch, best effort: its
//!   aggregations are happy to wait and fuse into wide batches.
//! * `inference` — small embedding queries under a tight simulated-latency
//!   SLO: deadline pressure closes their batches early instead of letting
//!   them queue behind training work.
//!
//! Every response is bit-identical to a solo run of the same request — the
//! front-end changes *when* work executes, never its bits. The epilogue
//! prints both tenants' digests and the close-reason mix.
//!
//! ```text
//! cargo run --release -p twoface-frontend --example gnn_training
//! ```

use std::error::Error;
use std::sync::Arc;
use twoface_core::gnn::{normalize_adjacency, Activation, GcnLayer};
use twoface_frontend::{AsyncFrontend, FrontendConfig, FrontendRequest, TenantQuota};
use twoface_matrix::gen::{rmat, RmatConfig};
use twoface_matrix::DenseMatrix;
use twoface_net::CostModel;
use twoface_serve::{ServeConfig, SpmmService};

const P: usize = 8;
const STRIPE_WIDTH: usize = 64;
const FEATURES: usize = 16;
const HIDDEN: usize = 32;
const EPOCHS: usize = 4;
const QUERIES: usize = 12;
const QUERY_K: usize = 4;
/// Inference SLO on the *simulated* clock: tight enough that queries
/// refuse to wait for a filling batch.
const QUERY_SLO_SIM_SECONDS: f64 = 0.000_05;

fn main() -> Result<(), Box<dyn Error + Send + Sync>> {
    // A social graph: symmetrized power-law R-MAT, row-normalized with self
    // loops (the standard GCN Â).
    let raw = rmat(&RmatConfig { scale: 12, edge_factor: 10, ..Default::default() }, 7);
    let adjacency = Arc::new(normalize_adjacency(&raw.symmetrize()?));
    println!(
        "graph: {} vertices, {} edges (after symmetrization + self loops)",
        adjacency.rows(),
        adjacency.nnz()
    );
    let n = adjacency.rows();
    let features = DenseMatrix::from_fn(n, FEATURES, |i, j| ((i * 31 + j * 7) % 97) as f64 / 97.0);

    let mut service = SpmmService::new(ServeConfig::new(P, CostModel::delta_scaled()));
    let graph = service.register_matrix(Arc::clone(&adjacency), STRIPE_WIDTH)?;

    let frontend = AsyncFrontend::spawn(service, FrontendConfig::default());
    let training = frontend.register_tenant("training", TenantQuota::unlimited())?;
    let inference = frontend
        .register_tenant("inference", TenantQuota { max_queued: 8, max_in_flight_k: 64 })?;

    // --- Training tenant: sequential epochs, best effort. -----------------
    let trainer = std::thread::spawn(move || -> Result<f64, Box<dyn Error + Send + Sync>> {
        let layer1 = GcnLayer::new(FEATURES, HIDDEN, 1, Activation::Relu);
        let layer2 = GcnLayer::new(HIDDEN, FEATURES, 2, Activation::Identity);
        let mut h = features.clone();
        for epoch in 0..EPOCHS {
            let mut epoch_sim = 0.0;
            for layer in [&layer1, &layer2] {
                let response = training.run(FrontendRequest::new(graph, Arc::new(h.clone())))?;
                epoch_sim += response.exec_sim_seconds;
                let mut out = response.output?.matmul(&layer.weights);
                if layer.activation == Activation::Relu {
                    out.map_inplace(|v| v.max(0.0));
                }
                h = out;
            }
            let norm = h.frobenius_norm();
            if norm > 0.0 {
                h.scale(features.frobenius_norm() / norm);
            }
            println!("  training epoch {epoch}: {:.3}ms simulated aggregation", epoch_sim * 1e3);
        }
        Ok(h.frobenius_norm())
    });

    // --- Inference tenant: independent queries under a tight SLO. ---------
    let querier =
        std::thread::spawn(move || -> Result<(usize, usize), Box<dyn Error + Send + Sync>> {
            let mut met = 0;
            let mut answered = 0;
            for q in 0..QUERIES {
                let probe = Arc::new(DenseMatrix::from_fn(n, QUERY_K, |i, j| {
                    ((i * 13 + j * 5 + q * 3) % 89) as f64 / 89.0
                }));
                let request = FrontendRequest::new(graph, probe).with_slo(QUERY_SLO_SIM_SECONDS);
                let response = inference.run(request)?;
                if response.deadline_met() == Some(true) {
                    met += 1;
                }
                response.output?;
                answered += 1;
            }
            Ok((answered, met))
        });

    println!("\ntwo tenants on one {P}-node cluster:");
    let embedding_norm = trainer.join().expect("training thread")?;
    let (answered, met) = querier.join().expect("inference thread")?;

    // Graceful shutdown flushes anything still queued and hands back the
    // core for inspection.
    let drained = frontend.shutdown();
    println!("\nfinal embedding norm {embedding_norm:.4}");
    println!("inference answered {answered}/{QUERIES} queries, {met} within the SLO");

    for tenant in drained.tenants() {
        let digest = drained.tenant_digest(&tenant).expect("registered tenant");
        println!(
            "tenant {tenant:>9}: {} submitted, {} completed, {} rejected; \
             sim latency p50 {:.3}ms p95 {:.3}ms; deadlines {} hit / {} missed",
            digest.submitted,
            digest.completed,
            digest.rejected,
            digest.latency_ns_p50 / 1e6,
            digest.latency_ns_p95 / 1e6,
            digest.deadline_hits,
            digest.deadline_misses,
        );
    }
    let m = drained.metrics();
    println!(
        "batches: {} closed ({} deadline-pressure, {} k-budget, {} aged, {} flush); \
         plan cache {} hits / {} misses",
        m.counter("frontend.batches_closed"),
        m.counter("frontend.close.deadline_pressure"),
        m.counter("frontend.close.k_budget_full"),
        m.counter("frontend.close.aged"),
        m.counter("frontend.close.flush"),
        drained.service().cache_stats().hits,
        drained.service().cache_stats().misses,
    );
    println!(
        "\nTraining fused its wide aggregations while inference queries closed\n\
         early under deadline pressure — one warm session, two latency\n\
         objectives, every output bit-identical to a solo run."
    );
    Ok(())
}
