//! Full-graph GNN training over the persistent SpMM service (§5.4).
//!
//! Trains a two-layer GCN on a power-law social graph with every aggregation
//! routed through [`SpmmService`]: the first epoch pays preprocessing (one
//! plan-cache miss per layer width), every later epoch hits the cache and
//! skips it entirely — the amortization argument of §5.4 made operational.
//! A one-shot baseline that rebuilds preprocessing for every SpMM shows what
//! the cache saves.
//!
//! ```text
//! cargo run --release -p twoface-serve --example gnn_training
//! ```

use std::error::Error;
use std::sync::Arc;
use std::time::Instant;
use twoface_core::gnn::{normalize_adjacency, Activation, GcnLayer};
use twoface_core::{run_algorithm, Algorithm, Problem, RunOptions};
use twoface_matrix::gen::{rmat, RmatConfig};
use twoface_matrix::DenseMatrix;
use twoface_net::CostModel;
use twoface_serve::{MatrixHandle, ServeConfig, SpmmRequest, SpmmService};

const P: usize = 8;
const STRIPE_WIDTH: usize = 64;
const FEATURES: usize = 16;
const HIDDEN: usize = 32;
const EPOCHS: usize = 5;

/// One GCN layer forward through the service: distributed aggregation
/// `Â · H`, then the local dense `· W` and activation.
fn forward_served(
    service: &mut SpmmService,
    adjacency: MatrixHandle,
    h: &DenseMatrix,
    layer: &GcnLayer,
) -> Result<(DenseMatrix, f64, bool, u64), Box<dyn Error>> {
    let response = service.run_one(SpmmRequest::new(adjacency, Arc::new(h.clone())))?;
    let cache_hit = response.cache_hit == Some(true);
    let prep_nanos = response.prep_wall_nanos;
    let aggregated = response.output?;
    let mut out = aggregated.matmul(&layer.weights);
    if layer.activation == Activation::Relu {
        out.map_inplace(|v| v.max(0.0));
    }
    Ok((out, response.sim_seconds, cache_hit, prep_nanos))
}

fn main() -> Result<(), Box<dyn Error>> {
    // A social graph: symmetrized power-law R-MAT, row-normalized with self
    // loops (the standard GCN Â).
    let raw = rmat(&RmatConfig { scale: 12, edge_factor: 10, ..Default::default() }, 7);
    let adjacency = Arc::new(normalize_adjacency(&raw.symmetrize()?));
    println!(
        "graph: {} vertices, {} edges (after symmetrization + self loops)",
        adjacency.rows(),
        adjacency.nnz()
    );
    let features = DenseMatrix::from_fn(adjacency.rows(), FEATURES, |i, j| {
        ((i * 31 + j * 7) % 97) as f64 / 97.0
    });
    let cost = CostModel::delta_scaled();

    let layer1 = GcnLayer::new(FEATURES, HIDDEN, 1, Activation::Relu);
    let layer2 = GcnLayer::new(HIDDEN, FEATURES, 2, Activation::Identity);

    // --- Served training: one warm session for the whole run. -------------
    let mut service = SpmmService::new(ServeConfig::new(P, cost));
    let graph = service.register_matrix(Arc::clone(&adjacency), STRIPE_WIDTH)?;

    let mut h = features.clone();
    let mut served_sim = 0.0;
    println!("\nserved: {EPOCHS} epochs x 2 SpMM layers on {P} nodes");
    for epoch in 0..EPOCHS {
        let wall = Instant::now();
        let (h1, t1, hit1, prep1) = forward_served(&mut service, graph, &h, &layer1)?;
        let (h2, t2, hit2, prep2) = forward_served(&mut service, graph, &h1, &layer2)?;
        let epoch_wall = wall.elapsed().as_secs_f64();
        served_sim += t1 + t2;
        println!(
            "  epoch {epoch}: {:.3}ms simulated aggregation, {:.1}ms wall \
             (layer cache {}/{}; preprocessing {:.1}ms)",
            (t1 + t2) * 1e3,
            epoch_wall * 1e3,
            if hit1 { "hit" } else { "miss" },
            if hit2 { "hit" } else { "miss" },
            (prep1 + prep2) as f64 / 1e6,
        );
        h = h2;
        let norm = h.frobenius_norm();
        if norm > 0.0 {
            h.scale(features.frobenius_norm() / norm);
        }
    }
    let stats = service.cache_stats();
    println!(
        "served totals: {:.3}ms simulated; plan cache {} hits / {} misses; \
         embedding norm {:.4}",
        served_sim * 1e3,
        stats.hits,
        stats.misses,
        h.frobenius_norm()
    );

    // --- One-shot baseline: preprocessing rebuilt for every SpMM. ---------
    let mut h = features.clone();
    let mut oneshot_sim = 0.0;
    let mut oneshot_prep_wall = 0.0;
    for _ in 0..EPOCHS {
        for layer in [&layer1, &layer2] {
            let problem =
                Problem::new(Arc::clone(&adjacency), Arc::new(h.clone()), P, STRIPE_WIDTH)?;
            let wall = Instant::now();
            let report =
                run_algorithm(Algorithm::TwoFace, &problem, &cost, &RunOptions::default())?;
            oneshot_prep_wall += wall.elapsed().as_secs_f64();
            oneshot_sim += report.seconds;
            let mut out =
                report.output.expect("compute_values is on by default").matmul(&layer.weights);
            if layer.activation == Activation::Relu {
                out.map_inplace(|v| v.max(0.0));
            }
            h = out;
        }
        let norm = h.frobenius_norm();
        if norm > 0.0 {
            h.scale(features.frobenius_norm() / norm);
        }
    }
    println!(
        "\none-shot totals: {:.3}ms simulated ({} preprocessing passes, \
         {:.1}ms wall per call incl. rebuild)",
        oneshot_sim * 1e3,
        2 * EPOCHS,
        oneshot_prep_wall / (2 * EPOCHS) as f64 * 1e3,
    );

    println!(
        "\nThe served session preprocesses each layer width once ({} misses) and\n\
         reuses the artifact for the remaining {} aggregations; the one-shot\n\
         baseline rebuilds it {} times. Simulated aggregation seconds are\n\
         identical by construction — the cache changes host work, not the\n\
         simulated schedule — which is exactly Table 6's amortization story.",
        stats.misses,
        2 * EPOCHS - stats.misses as usize,
        2 * EPOCHS,
    );
    Ok(())
}
