//! Scaling study: how Two-Face and dense shifting behave as the machine
//! grows, on one matrix of the user's choice.
//!
//! ```text
//! cargo run --release -p twoface-core --example scaling_study -- queen
//! cargo run --release -p twoface-core --example scaling_study -- twitter 64
//! ```
//!
//! Arguments: matrix short name (default `queen`) and maximum node count
//! (default 32, must be a power of two).

use std::error::Error;
use twoface_core::{run_algorithm, Algorithm, Problem, RunError, RunOptions};
use twoface_matrix::gen::SuiteMatrix;
use twoface_net::CostModel;

const K: usize = 128;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("queen");
    let max_p: usize = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(32);
    let matrix =
        SuiteMatrix::from_short_name(name).ok_or_else(|| format!("unknown matrix {name:?}"))?;
    let a = std::sync::Arc::new(matrix.generate());
    println!(
        "scaling {} ({} nnz) from 1 to {max_p} nodes at K = {K}\n",
        matrix.short_name(),
        a.nnz()
    );

    let cost = CostModel::delta_scaled();
    let options = RunOptions { compute_values: false, ..Default::default() };
    let algorithms = [
        Algorithm::TwoFace,
        Algorithm::DenseShifting { replication: 1 },
        Algorithm::DenseShifting { replication: 4 },
        Algorithm::AsyncFine,
    ];
    let header: String = algorithms.iter().map(|a| format!("{:>14}", a.name())).collect();
    println!("{:<6}{header}{:>12}", "p", "TF efficiency");

    let mut p = 1usize;
    let mut twoface_at_1: Option<f64> = None;
    while p <= max_p {
        let problem =
            Problem::with_generated_b(std::sync::Arc::clone(&a), K, p, matrix.stripe_width())?;
        let mut line = format!("{:<6}", p);
        let mut twoface_seconds = None;
        for algo in algorithms {
            match run_algorithm(algo, &problem, &cost, &options) {
                Ok(r) => {
                    if algo == Algorithm::TwoFace {
                        twoface_seconds = Some(r.seconds);
                    }
                    line.push_str(&format!("{:>14.6}", r.seconds));
                }
                Err(RunError::OutOfMemory { .. }) => line.push_str(&format!("{:>14}", "OOM")),
                Err(RunError::ReplicationExceedsNodes { .. }) => {
                    line.push_str(&format!("{:>14}", "n/a"))
                }
                Err(e) => return Err(e.into()),
            }
        }
        // Parallel efficiency of Two-Face relative to its single-node run.
        match (twoface_at_1, twoface_seconds) {
            (None, Some(t)) => {
                twoface_at_1 = Some(t);
                line.push_str(&format!("{:>11.0}%", 100.0));
            }
            (Some(t1), Some(tp)) => {
                line.push_str(&format!("{:>11.0}%", 100.0 * t1 / (tp * p as f64)));
            }
            _ => line.push_str(&format!("{:>12}", "-")),
        }
        println!("{line}");
        p *= 2;
    }
    println!(
        "\nReading guide: a communication-bound kernel cannot scale linearly —\n\
         the paper reports 7.47x mean improvement from 1 to 64 nodes. Watch the\n\
         efficiency column decay, and compare Two-Face's decay against DS's."
    );
    Ok(())
}
