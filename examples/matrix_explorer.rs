//! Matrix explorer: why does a given matrix prefer collective or one-sided
//! communication?
//!
//! Prints an ASCII spy plot, degree statistics, the dense-stripe fan-out
//! profile, and the Two-Face classifier's verdict for each matrix named on
//! the command line (default: all eight suite analogs).
//!
//! ```text
//! cargo run --release -p twoface-core --example matrix_explorer -- web twitter
//! ```

use std::error::Error;
use std::sync::Arc;
use twoface_core::{prepare_plan, Problem};
use twoface_matrix::gen::SuiteMatrix;
use twoface_matrix::stats::{column_block_fanout, density_grid, MatrixStats};
use twoface_net::CostModel;
use twoface_partition::ModelCoefficients;

const P: usize = 32;
const K: usize = 128;
const GRID: usize = 24;

fn shade(count: usize, max: usize) -> char {
    if count == 0 {
        return '.';
    }
    let levels = [':', '+', 'x', '#', '@'];
    let idx = (count * levels.len()) / (max + 1);
    levels[idx.min(levels.len() - 1)]
}

fn explore(name: &str) -> Result<(), Box<dyn Error>> {
    let Some(matrix) = SuiteMatrix::from_short_name(name) else {
        return Err(format!(
            "unknown matrix {name:?}; valid names: {}",
            SuiteMatrix::ALL.map(|m| m.short_name()).join(", ")
        )
        .into());
    };
    let a = Arc::new(matrix.generate());
    let stats = MatrixStats::compute(&a);
    println!("\n================ {} (analog of {}) ================", name, matrix.long_name());
    println!("{} x {}, {} nnz, density {:.2e}", stats.rows, stats.cols, stats.nnz, stats.density);
    println!(
        "row degrees:  mean {:.1}, median {}, p99 {}, max {}, gini {:.3}",
        stats.row_degrees.mean,
        stats.row_degrees.median,
        stats.row_degrees.p99,
        stats.row_degrees.max,
        stats.row_degrees.gini
    );
    println!(
        "col degrees:  mean {:.1}, median {}, p99 {}, max {}, gini {:.3}",
        stats.col_degrees.mean,
        stats.col_degrees.median,
        stats.col_degrees.p99,
        stats.col_degrees.max,
        stats.col_degrees.gini
    );
    println!("near-diagonal mass: {:.1}%", stats.near_diagonal_fraction * 100.0);

    // Spy plot.
    println!("\nspy plot ({GRID}x{GRID} raster):");
    let grid = density_grid(&a, GRID);
    let max = grid.iter().flatten().copied().max().unwrap_or(0);
    for row in &grid {
        let line: String = row.iter().map(|&c| shade(c, max)).collect();
        println!("  {line}");
    }

    // Dense-stripe fan-out: how many nodes need each stripe of B?
    let w = matrix.stripe_width();
    let block_rows = a.rows().div_ceil(P);
    let fanout = column_block_fanout(&a, w, block_rows);
    let mut histogram = [0usize; 5]; // 0, 1-2, 3-8, 9-24, 25+
    for &f in &fanout {
        let bucket = match f {
            0 => 0,
            1..=2 => 1,
            3..=8 => 2,
            9..=24 => 3,
            _ => 4,
        };
        histogram[bucket] += 1;
    }
    println!(
        "\ndense-stripe fan-out (stripe width {w}, {P} nodes): \
         {} unneeded, {} to 1-2 nodes, {} to 3-8, {} to 9-24, {} to 25+",
        histogram[0], histogram[1], histogram[2], histogram[3], histogram[4]
    );

    // The classifier's verdict.
    let problem = Problem::with_generated_b(Arc::clone(&a), K, P, w)?;
    let cost = CostModel::delta_scaled();
    let plan = prepare_plan(&problem, &ModelCoefficients::from(&cost), &cost);
    let (local, sync, async_) = plan.class_totals();
    let (local_nnz, sync_nnz, async_nnz) = plan.nnz_totals();
    println!(
        "Two-Face classification (K = {K}): stripes {local} local / {sync} sync / {async_} async; \
         nnz {:.1}% local / {:.1}% sync / {:.1}% async",
        100.0 * local_nnz as f64 / a.nnz() as f64,
        100.0 * sync_nnz as f64 / a.nnz() as f64,
        100.0 * async_nnz as f64 / a.nnz() as f64,
    );
    let verdict = if sync == 0 {
        "pure fine-grained territory"
    } else if async_ == 0 {
        "pure collective territory"
    } else {
        "a genuine two-face mix"
    };
    println!("verdict: {verdict}");
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        SuiteMatrix::ALL.iter().map(|m| m.short_name()).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in names {
        explore(name)?;
    }
    Ok(())
}
